#include "dataflow/pe.hpp"

#include <algorithm>
#include <limits>

#include "nn/kernels.hpp"
#include "nn/layer.hpp"

namespace condor::dataflow {
namespace {

/// Drains `count` elements from a weight stream into `buffer`.
Status read_weights(Stream* stream, std::size_t count, std::vector<float>& buffer,
                    const std::string& pe_name) {
  buffer.resize(count);
  if (stream == nullptr ||
      stream->read_burst(std::span<float>(buffer)) != count) {
    return internal_error("PE '" + pe_name + "': weight stream ended early");
  }
  return Status::ok();
}

/// Executes fn(lane) for each of `lanes` compute lanes: inline when there is
/// a single lane or no pool, fork-joined on the pool otherwise
/// (parallel_shards is safe to call from inside a module task).
void run_lanes(ThreadPool* pool, std::size_t lanes,
               const std::function<void(std::size_t)>& fn) {
  if (lanes <= 1 || pool == nullptr) {
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      fn(lane);
    }
    return;
  }
  pool->parallel_shards(lanes, fn);
}

/// Contiguous output-channel slice [begin, end) owned by `lane` out of
/// `lanes` over `total` channels (ceil-chunked, robust to non-divisors and
/// lanes > total).
struct OcSlice {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t width() const noexcept { return end - begin; }
};

OcSlice oc_slice(std::size_t total, std::size_t lanes, std::size_t lane) {
  const std::size_t chunk = (total + lanes - 1) / lanes;
  const std::size_t begin = std::min(total, lane * chunk);
  return {begin, std::min(total, begin + chunk)};
}

}  // namespace

Status FeaturePeModule::run(const RunContext& ctx) {
  std::vector<float> weight_buffer;
  std::vector<float> bias_buffer;
  for (std::size_t image = 0; image < ctx.batch; ++image) {
    for (std::size_t pi = 0; pi < program_.passes.size(); ++pi) {
      const LayerPass& pass = program_.passes[pi];
      const bool last = pi + 1 == program_.passes.size();
      Stream* sink = last ? &out_ : loopback_;
      if (sink == nullptr) {
        return internal_error("PE '" + name() + "': missing loopback stream");
      }
      // The datamover delivers this pass's weight slice per image (the
      // full set streams from on-board memory, paper §3.2).
      if (pass.params != nullptr) {
        CONDOR_RETURN_IF_ERROR(read_weights(
            weights_, pass.params->weights.size(), weight_buffer, name()));
        CONDOR_RETURN_IF_ERROR(read_weights(
            weights_, pass.params->bias.size(), bias_buffer, name()));
      } else {
        weight_buffer.clear();
        bias_buffer.clear();
      }
      CONDOR_RETURN_IF_ERROR(run_pass(pass, *sink, weight_buffer, bias_buffer));
    }
  }
  out_.close();
  if (loopback_ != nullptr) {
    loopback_->close();
  }
  return Status::ok();
}

Status FeaturePeModule::read_port_rows(
    const LayerPass& pass, std::size_t lane,
    std::vector<std::vector<float>>& port_rows) {
  const std::size_t lane_stride = window_h_max_ * window_w_max_;
  for (std::size_t ky = 0; ky < pass.window_h; ++ky) {
    for (std::size_t kx = 0; kx < pass.window_w; ++kx) {
      Stream* port = ports_[lane * lane_stride + ky * window_w_max_ + kx];
      std::vector<float>& row = port_rows[ky * pass.window_w + kx];
      row.resize(pass.out_w);
      if (port->read_burst(std::span<float>(row)) != row.size()) {
        return internal_error("PE '" + name() + "': port stream ended early");
      }
    }
  }
  return Status::ok();
}

Status FeaturePeModule::read_port_stripe(const LayerPass& pass,
                                         std::size_t lane,
                                         std::vector<float>& stage) {
  const std::size_t lane_stride = window_h_max_ * window_w_max_;
  const std::size_t tap_count = pass.window_h * pass.window_w;
  stage.resize(pass.out_h * tap_count * pass.out_w);
  for (std::size_t oy = 0; oy < pass.out_h; ++oy) {
    for (std::size_t ky = 0; ky < pass.window_h; ++ky) {
      for (std::size_t kx = 0; kx < pass.window_w; ++kx) {
        Stream* port = ports_[lane * lane_stride + ky * window_w_max_ + kx];
        const std::size_t tap = ky * pass.window_w + kx;
        std::span<float> row(
            stage.data() + (oy * tap_count + tap) * pass.out_w, pass.out_w);
        if (port->read_burst(row) != row.size()) {
          return internal_error("PE '" + name() + "': port stream ended early");
        }
      }
    }
  }
  return Status::ok();
}

Status FeaturePeModule::run_pass(const LayerPass& pass, Stream& sink,
                                 std::span<const float> weights,
                                 std::span<const float> bias) {
  const std::size_t lane_stride = window_h_max_ * window_w_max_;

  switch (pass.kind) {
    case PassKind::kConvolution: {
      const std::size_t oc_total = pass.out_channels;
      const std::size_t map_points = pass.out_h * pass.out_w;
      const std::size_t tap_count = pass.window_h * pass.window_w;

      // One-time repack per pass: the stream delivers the weights in their
      // canonical (oc, ic, ky, kx) order; the microkernel wants the output
      // channel innermost (ic, ky, kx, oc) so its hot loop is contiguous.
      const std::vector<float> packed = nn::kernels::pack_conv_weights(
          weights, oc_total, pass.in_channels, pass.window_h, pass.window_w);

      // parallel_out compute lanes, each owning a disjoint oc slice with a
      // point-major accumulator tile seeded with the bias. Per output
      // element the accumulation chain (bias, then ic-major (ky, kx) adds)
      // is byte-identical to the single-lane schedule.
      const std::size_t compute_lanes =
          std::clamp<std::size_t>(parallel_out_, 1, std::max<std::size_t>(oc_total, 1));
      std::vector<std::vector<float>> lane_acc(compute_lanes);
      std::vector<std::vector<const float*>> lane_taps(compute_lanes);
      for (std::size_t lane = 0; lane < compute_lanes; ++lane) {
        const OcSlice slice = oc_slice(oc_total, compute_lanes, lane);
        lane_acc[lane].resize(map_points * slice.width());
        float* acc = lane_acc[lane].data();
        for (std::size_t point = 0; point < map_points; ++point) {
          for (std::size_t j = 0; j < slice.width(); ++j) {
            acc[point * slice.width() + j] =
                pass.has_bias ? bias[slice.begin + j] : 0.0F;
          }
        }
        lane_taps[lane].resize(tap_count);
      }

      // Stream one input-channel stripe at a time (identical FIFO read
      // order to the row-at-a-time schedule) and fork the lanes over it.
      std::vector<float> stage;
      for (std::size_t ic = 0; ic < pass.in_channels; ++ic) {
        CONDOR_RETURN_IF_ERROR(read_port_stripe(pass, ic % lanes_, stage));
        const float* packed_ic = packed.data() + ic * tap_count * oc_total;
        run_lanes(lane_pool_, compute_lanes, [&](std::size_t lane) {
          const OcSlice slice = oc_slice(oc_total, compute_lanes, lane);
          if (slice.width() == 0) {
            return;
          }
          float* acc = lane_acc[lane].data();
          const float** taps = lane_taps[lane].data();
          for (std::size_t oy = 0; oy < pass.out_h; ++oy) {
            for (std::size_t tap = 0; tap < tap_count; ++tap) {
              taps[tap] = stage.data() + (oy * tap_count + tap) * pass.out_w;
            }
            nn::kernels::conv_accumulate_row(
                acc + oy * pass.out_w * slice.width(), slice.width(),
                pass.out_w, taps, tap_count, 1, packed_ic + slice.begin,
                oc_total);
          }
        });
      }

      // Activation + transpose into the (oc, oy, ox) emission order; each
      // lane writes its disjoint contiguous output block.
      std::vector<float> out_blob(oc_total * map_points);
      run_lanes(lane_pool_, compute_lanes, [&](std::size_t lane) {
        const OcSlice slice = oc_slice(oc_total, compute_lanes, lane);
        const float* acc = lane_acc[lane].data();
        for (std::size_t j = 0; j < slice.width(); ++j) {
          float* out_map = out_blob.data() + (slice.begin + j) * map_points;
          for (std::size_t point = 0; point < map_points; ++point) {
            out_map[point] = nn::apply_activation(
                pass.activation, acc[point * slice.width() + j]);
          }
        }
      });
      if (!sink.write_burst(out_blob)) {
        return internal_error("PE '" + name() + "': sink closed mid-pass");
      }
      return Status::ok();
    }

    case PassKind::kPooling: {
      // Per-port staging rows: port (ky, kx) delivers the out_w consecutive
      // window entries of one output row per burst. Channel c's window
      // arrives on chain lane c % lanes.
      std::vector<std::vector<float>> port_rows(pass.window_h * pass.window_w);
      const float window_size =
          static_cast<float>(pass.window_h * pass.window_w);
      std::vector<float> out_row(pass.out_w);
      for (std::size_t c = 0; c < pass.in_channels; ++c) {
        for (std::size_t oy = 0; oy < pass.out_h; ++oy) {
          CONDOR_RETURN_IF_ERROR(read_port_rows(pass, c % lanes_, port_rows));
          for (std::size_t ox = 0; ox < pass.out_w; ++ox) {
            float result = pass.pool_method == nn::PoolMethod::kMax
                               ? -std::numeric_limits<float>::infinity()
                               : 0.0F;
            for (std::size_t ky = 0; ky < pass.window_h; ++ky) {
              for (std::size_t kx = 0; kx < pass.window_w; ++kx) {
                const float value = port_rows[ky * pass.window_w + kx][ox];
                if (pass.pool_method == nn::PoolMethod::kMax) {
                  result = std::max(result, value);
                } else {
                  result += value;
                }
              }
            }
            if (pass.pool_method == nn::PoolMethod::kAverage) {
              result /= window_size;
            }
            out_row[ox] = nn::apply_activation(pass.activation, result);
          }
          if (!sink.write_burst(out_row)) {
            return internal_error("PE '" + name() + "': sink closed mid-pass");
          }
        }
      }
      return Status::ok();
    }

    case PassKind::kElementwise: {
      // 1x1 window: only access (0, 0) of the channel's lane. The whole
      // channel map transfers as one burst.
      std::vector<float> map(pass.in_h * pass.in_w);
      for (std::size_t c = 0; c < pass.in_channels; ++c) {
        Stream* port = ports_[(c % lanes_) * lane_stride];
        if (port->read_burst(std::span<float>(map)) != map.size()) {
          return internal_error("PE '" + name() + "': port stream ended early");
        }
        for (float& value : map) {
          value = nn::apply_activation(pass.activation, value);
        }
        if (!sink.write_burst(map)) {
          return internal_error("PE '" + name() + "': sink closed mid-pass");
        }
      }
      return Status::ok();
    }

    case PassKind::kInnerProduct:
      return internal_error("feature PE cannot execute an inner-product pass");
  }
  return internal_error("unhandled pass kind");
}

Status ClassifierPeModule::run(const RunContext& ctx) {
  // Runtime configuration load: the datamover delivers every pass's
  // weights once per run; they stay resident for the whole batch, repacked
  // once into the transposed (in, out) GEMV layout the microkernel wants.
  std::vector<std::vector<float>> packed_weights(program_.passes.size());
  std::vector<std::vector<float>> pass_bias(program_.passes.size());
  std::vector<float> weight_buffer;
  for (std::size_t pi = 0; pi < program_.passes.size(); ++pi) {
    const LayerPass& pass = program_.passes[pi];
    if (pass.params == nullptr) {
      continue;
    }
    CONDOR_RETURN_IF_ERROR(read_weights(weights_, pass.params->weights.size(),
                                        weight_buffer, name()));
    packed_weights[pi] = nn::kernels::pack_inner_product_weights(
        weight_buffer, pass.output_elements(), pass.input_elements());
    CONDOR_RETURN_IF_ERROR(
        read_weights(weights_, pass.params->bias.size(), pass_bias[pi], name()));
  }

  // Scratch blobs reused across the whole batch (resize below the high-water
  // capacity never reallocates).
  std::vector<float> current;
  std::vector<float> next;
  for (std::size_t image = 0; image < ctx.batch; ++image) {
    // Stage the flattened input of the first pass.
    current.resize(program_.passes.front().input_elements());
    if (in_.read_burst(std::span<float>(current)) != current.size()) {
      return internal_error("PE '" + name() + "': input stream ended early");
    }
    for (std::size_t pi = 0; pi < program_.passes.size(); ++pi) {
      const LayerPass& pass = program_.passes[pi];
      switch (pass.kind) {
        case PassKind::kInnerProduct: {
          const std::size_t in_count = pass.input_elements();
          const std::size_t out_count = pass.output_elements();
          const std::vector<float>& packed = packed_weights[pi];
          next.resize(out_count);
          // parallel_out lanes over disjoint output-neuron slices; each
          // neuron's chain (bias, then ascending-h adds) is unchanged.
          const std::size_t compute_lanes = std::clamp<std::size_t>(
              parallel_out_, 1, std::max<std::size_t>(out_count, 1));
          run_lanes(lane_pool_, compute_lanes, [&](std::size_t lane) {
            const OcSlice slice = oc_slice(out_count, compute_lanes, lane);
            if (slice.width() == 0) {
              return;
            }
            float* acc = next.data() + slice.begin;
            for (std::size_t j = 0; j < slice.width(); ++j) {
              acc[j] = pass.has_bias ? pass_bias[pi][slice.begin + j] : 0.0F;
            }
            nn::kernels::inner_product_accumulate(
                acc, slice.width(), current.data(), in_count,
                packed.data() + slice.begin, out_count);
            for (std::size_t j = 0; j < slice.width(); ++j) {
              acc[j] = nn::apply_activation(pass.activation, acc[j]);
            }
          });
          std::swap(current, next);
          break;
        }
        case PassKind::kElementwise: {
          for (float& value : current) {
            value = nn::apply_activation(pass.activation, value);
          }
          break;
        }
        default:
          return internal_error("classifier PE got a windowed pass");
      }
    }
    if (!out_.write_burst(current)) {
      return internal_error("PE '" + name() + "': output closed mid-batch");
    }
  }
  out_.close();
  return Status::ok();
}

}  // namespace condor::dataflow

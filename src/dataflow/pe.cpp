#include "dataflow/pe.hpp"

#include <algorithm>
#include <limits>

#include "nn/layer.hpp"

namespace condor::dataflow {
namespace {

/// Drains `count` elements from a weight stream into `buffer`.
Status read_weights(Stream* stream, std::size_t count, std::vector<float>& buffer,
                    const std::string& pe_name) {
  buffer.resize(count);
  if (stream == nullptr ||
      stream->read_burst(std::span<float>(buffer)) != count) {
    return internal_error("PE '" + pe_name + "': weight stream ended early");
  }
  return Status::ok();
}

}  // namespace

Status FeaturePeModule::run(const RunContext& ctx) {
  std::vector<float> weight_buffer;
  std::vector<float> bias_buffer;
  for (std::size_t image = 0; image < ctx.batch; ++image) {
    for (std::size_t pi = 0; pi < program_.passes.size(); ++pi) {
      const LayerPass& pass = program_.passes[pi];
      const bool last = pi + 1 == program_.passes.size();
      Stream* sink = last ? &out_ : loopback_;
      if (sink == nullptr) {
        return internal_error("PE '" + name() + "': missing loopback stream");
      }
      // The datamover delivers this pass's weight slice per image (the
      // full set streams from on-board memory, paper §3.2).
      if (pass.params != nullptr) {
        CONDOR_RETURN_IF_ERROR(read_weights(
            weights_, pass.params->weights.size(), weight_buffer, name()));
        CONDOR_RETURN_IF_ERROR(read_weights(
            weights_, pass.params->bias.size(), bias_buffer, name()));
      } else {
        weight_buffer.clear();
        bias_buffer.clear();
      }
      CONDOR_RETURN_IF_ERROR(run_pass(pass, *sink, weight_buffer, bias_buffer));
    }
  }
  out_.close();
  if (loopback_ != nullptr) {
    loopback_->close();
  }
  return Status::ok();
}

Status FeaturePeModule::read_port_rows(
    const LayerPass& pass, std::size_t lane,
    std::vector<std::vector<float>>& port_rows) {
  const std::size_t lane_stride = window_h_max_ * window_w_max_;
  for (std::size_t ky = 0; ky < pass.window_h; ++ky) {
    for (std::size_t kx = 0; kx < pass.window_w; ++kx) {
      Stream* port = ports_[lane * lane_stride + ky * window_w_max_ + kx];
      std::vector<float>& row = port_rows[ky * pass.window_w + kx];
      row.resize(pass.out_w);
      if (port->read_burst(std::span<float>(row)) != row.size()) {
        return internal_error("PE '" + name() + "': port stream ended early");
      }
    }
  }
  return Status::ok();
}

Status FeaturePeModule::run_pass(const LayerPass& pass, Stream& sink,
                                 std::span<const float> weights,
                                 std::span<const float> bias) {
  // Per-port staging rows: port (ky, kx) delivers the out_w consecutive
  // window entries of one output row per burst. Channel c's window arrives
  // on chain lane c % lanes. The accumulation order over the staged values
  // is identical to the element-at-a-time schedule.
  std::vector<std::vector<float>> port_rows(pass.window_h * pass.window_w);
  const std::size_t lane_stride = window_h_max_ * window_w_max_;

  switch (pass.kind) {
    case PassKind::kConvolution: {
      // Weight layout in the stream: row-major (oc, ic, ky, kx), the same
      // order the weight tensor stores.
      const auto weight_at = [&](std::size_t oc, std::size_t ic, std::size_t ky,
                                 std::size_t kx) {
        return weights[((oc * pass.in_channels + ic) * pass.window_h + ky) *
                           pass.window_w +
                       kx];
      };

      // Accumulators for all output maps, seeded with the bias so the
      // overall addition sequence matches the reference engine exactly.
      std::vector<float> acc(pass.output_elements(), 0.0F);
      const std::size_t map_points = pass.out_h * pass.out_w;
      for (std::size_t oc = 0; oc < pass.out_channels; ++oc) {
        const float seed = pass.has_bias ? bias[oc] : 0.0F;
        std::fill_n(acc.begin() + static_cast<std::ptrdiff_t>(oc * map_points),
                    map_points, seed);
      }
      for (std::size_t ic = 0; ic < pass.in_channels; ++ic) {
        for (std::size_t oy = 0; oy < pass.out_h; ++oy) {
          CONDOR_RETURN_IF_ERROR(read_port_rows(pass, ic % lanes_, port_rows));
          for (std::size_t ox = 0; ox < pass.out_w; ++ox) {
            const std::size_t point = oy * pass.out_w + ox;
            for (std::size_t oc = 0; oc < pass.out_channels; ++oc) {
              float partial = acc[oc * map_points + point];
              for (std::size_t ky = 0; ky < pass.window_h; ++ky) {
                for (std::size_t kx = 0; kx < pass.window_w; ++kx) {
                  partial += weight_at(oc, ic, ky, kx) *
                             port_rows[ky * pass.window_w + kx][ox];
                }
              }
              acc[oc * map_points + point] = partial;
            }
          }
        }
      }
      for (float& value : acc) {
        value = nn::apply_activation(pass.activation, value);
      }
      if (!sink.write_burst(acc)) {
        return internal_error("PE '" + name() + "': sink closed mid-pass");
      }
      return Status::ok();
    }

    case PassKind::kPooling: {
      const float window_size =
          static_cast<float>(pass.window_h * pass.window_w);
      std::vector<float> out_row(pass.out_w);
      for (std::size_t c = 0; c < pass.in_channels; ++c) {
        for (std::size_t oy = 0; oy < pass.out_h; ++oy) {
          CONDOR_RETURN_IF_ERROR(read_port_rows(pass, c % lanes_, port_rows));
          for (std::size_t ox = 0; ox < pass.out_w; ++ox) {
            float result = pass.pool_method == nn::PoolMethod::kMax
                               ? -std::numeric_limits<float>::infinity()
                               : 0.0F;
            for (std::size_t ky = 0; ky < pass.window_h; ++ky) {
              for (std::size_t kx = 0; kx < pass.window_w; ++kx) {
                const float value = port_rows[ky * pass.window_w + kx][ox];
                if (pass.pool_method == nn::PoolMethod::kMax) {
                  result = std::max(result, value);
                } else {
                  result += value;
                }
              }
            }
            if (pass.pool_method == nn::PoolMethod::kAverage) {
              result /= window_size;
            }
            out_row[ox] = nn::apply_activation(pass.activation, result);
          }
          if (!sink.write_burst(out_row)) {
            return internal_error("PE '" + name() + "': sink closed mid-pass");
          }
        }
      }
      return Status::ok();
    }

    case PassKind::kElementwise: {
      // 1x1 window: only access (0, 0) of the channel's lane. The whole
      // channel map transfers as one burst.
      std::vector<float> map(pass.in_h * pass.in_w);
      for (std::size_t c = 0; c < pass.in_channels; ++c) {
        Stream* port = ports_[(c % lanes_) * lane_stride];
        if (port->read_burst(std::span<float>(map)) != map.size()) {
          return internal_error("PE '" + name() + "': port stream ended early");
        }
        for (float& value : map) {
          value = nn::apply_activation(pass.activation, value);
        }
        if (!sink.write_burst(map)) {
          return internal_error("PE '" + name() + "': sink closed mid-pass");
        }
      }
      return Status::ok();
    }

    case PassKind::kInnerProduct:
      return internal_error("feature PE cannot execute an inner-product pass");
  }
  return internal_error("unhandled pass kind");
}

Status ClassifierPeModule::run(const RunContext& ctx) {
  // Runtime configuration load: the datamover delivers every pass's
  // weights once per run; they stay resident for the whole batch.
  std::vector<std::vector<float>> pass_weights(program_.passes.size());
  std::vector<std::vector<float>> pass_bias(program_.passes.size());
  for (std::size_t pi = 0; pi < program_.passes.size(); ++pi) {
    const LayerPass& pass = program_.passes[pi];
    if (pass.params == nullptr) {
      continue;
    }
    CONDOR_RETURN_IF_ERROR(read_weights(weights_, pass.params->weights.size(),
                                        pass_weights[pi], name()));
    CONDOR_RETURN_IF_ERROR(
        read_weights(weights_, pass.params->bias.size(), pass_bias[pi], name()));
  }

  for (std::size_t image = 0; image < ctx.batch; ++image) {
    // Stage the flattened input of the first pass.
    std::vector<float> current(program_.passes.front().input_elements());
    if (in_.read_burst(std::span<float>(current)) != current.size()) {
      return internal_error("PE '" + name() + "': input stream ended early");
    }
    for (std::size_t pi = 0; pi < program_.passes.size(); ++pi) {
      const LayerPass& pass = program_.passes[pi];
      switch (pass.kind) {
        case PassKind::kInnerProduct: {
          const std::size_t in_count = pass.input_elements();
          const std::size_t out_count = pass.output_elements();
          const std::vector<float>& weights = pass_weights[pi];
          std::vector<float> next(out_count, 0.0F);
          for (std::size_t l = 0; l < out_count; ++l) {
            float acc = pass.has_bias ? pass_bias[pi][l] : 0.0F;
            for (std::size_t h = 0; h < in_count; ++h) {
              acc += weights[l * in_count + h] * current[h];
            }
            next[l] = nn::apply_activation(pass.activation, acc);
          }
          current = std::move(next);
          break;
        }
        case PassKind::kElementwise: {
          for (float& value : current) {
            value = nn::apply_activation(pass.activation, value);
          }
          break;
        }
        default:
          return internal_error("classifier PE got a windowed pass");
      }
    }
    if (!out_.write_burst(current)) {
      return internal_error("PE '" + name() + "': output closed mid-batch");
    }
  }
  out_.close();
  return Status::ok();
}

}  // namespace condor::dataflow

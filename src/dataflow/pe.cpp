#include "dataflow/pe.hpp"

#include <algorithm>
#include <limits>

#include "nn/layer.hpp"

namespace condor::dataflow {
namespace {

/// Drains `count` elements from a weight stream into `buffer`.
Status read_weights(Stream* stream, std::size_t count, std::vector<float>& buffer,
                    const std::string& pe_name) {
  buffer.resize(count);
  for (float& value : buffer) {
    if (stream == nullptr || !stream->read(value)) {
      return internal_error("PE '" + pe_name + "': weight stream ended early");
    }
  }
  return Status::ok();
}

}  // namespace

Status FeaturePeModule::run() {
  std::vector<float> weight_buffer;
  std::vector<float> bias_buffer;
  for (std::size_t image = 0; image < batch_; ++image) {
    for (std::size_t pi = 0; pi < program_.passes.size(); ++pi) {
      const LayerPass& pass = program_.passes[pi];
      const bool last = pi + 1 == program_.passes.size();
      Stream* sink = last ? &out_ : loopback_;
      if (sink == nullptr) {
        return internal_error("PE '" + name() + "': missing loopback stream");
      }
      // The datamover delivers this pass's weight slice per image (the
      // full set streams from on-board memory, paper §3.2).
      if (pass.params != nullptr) {
        CONDOR_RETURN_IF_ERROR(read_weights(
            weights_, pass.params->weights.size(), weight_buffer, name()));
        CONDOR_RETURN_IF_ERROR(read_weights(
            weights_, pass.params->bias.size(), bias_buffer, name()));
      } else {
        weight_buffer.clear();
        bias_buffer.clear();
      }
      CONDOR_RETURN_IF_ERROR(run_pass(pass, *sink, weight_buffer, bias_buffer));
    }
  }
  out_.close();
  if (loopback_ != nullptr) {
    loopback_->close();
  }
  return Status::ok();
}

Status FeaturePeModule::run_pass(const LayerPass& pass, Stream& sink,
                                 std::span<const float> weights,
                                 std::span<const float> bias) {
  // Window staging registers (row-major over the active window). Channel
  // c's window arrives on chain lane c % lanes.
  std::vector<float> window(pass.window_h * pass.window_w, 0.0F);
  const std::size_t lane_stride = window_h_max_ * window_w_max_;

  const auto read_window = [&](std::size_t lane) -> Status {
    for (std::size_t ky = 0; ky < pass.window_h; ++ky) {
      for (std::size_t kx = 0; kx < pass.window_w; ++kx) {
        Stream* port = ports_[lane * lane_stride + ky * window_w_max_ + kx];
        float value = 0.0F;
        if (!port->read(value)) {
          return internal_error("PE '" + name() + "': port stream ended early");
        }
        window[ky * pass.window_w + kx] = value;
      }
    }
    return Status::ok();
  };

  switch (pass.kind) {
    case PassKind::kConvolution: {
      // Weight layout in the stream: row-major (oc, ic, ky, kx), the same
      // order the weight tensor stores.
      const std::size_t window_size = pass.window_h * pass.window_w;
      const auto weight_at = [&](std::size_t oc, std::size_t ic, std::size_t ky,
                                 std::size_t kx) {
        return weights[((oc * pass.in_channels + ic) * pass.window_h + ky) *
                           pass.window_w +
                       kx];
      };
      (void)window_size;

      // Accumulators for all output maps, seeded with the bias so the
      // overall addition sequence matches the reference engine exactly.
      std::vector<float> acc(pass.output_elements(), 0.0F);
      const std::size_t map_points = pass.out_h * pass.out_w;
      for (std::size_t oc = 0; oc < pass.out_channels; ++oc) {
        const float seed = pass.has_bias ? bias[oc] : 0.0F;
        std::fill_n(acc.begin() + static_cast<std::ptrdiff_t>(oc * map_points),
                    map_points, seed);
      }
      for (std::size_t ic = 0; ic < pass.in_channels; ++ic) {
        for (std::size_t point = 0; point < map_points; ++point) {
          CONDOR_RETURN_IF_ERROR(read_window(ic % lanes_));
          for (std::size_t oc = 0; oc < pass.out_channels; ++oc) {
            float partial = acc[oc * map_points + point];
            for (std::size_t ky = 0; ky < pass.window_h; ++ky) {
              for (std::size_t kx = 0; kx < pass.window_w; ++kx) {
                partial +=
                    weight_at(oc, ic, ky, kx) * window[ky * pass.window_w + kx];
              }
            }
            acc[oc * map_points + point] = partial;
          }
        }
      }
      for (float value : acc) {
        sink.write(nn::apply_activation(pass.activation, value));
      }
      return Status::ok();
    }

    case PassKind::kPooling: {
      const float window_size =
          static_cast<float>(pass.window_h * pass.window_w);
      for (std::size_t c = 0; c < pass.in_channels; ++c) {
        for (std::size_t point = 0; point < pass.out_h * pass.out_w; ++point) {
          CONDOR_RETURN_IF_ERROR(read_window(c % lanes_));
          float result = pass.pool_method == nn::PoolMethod::kMax
                             ? -std::numeric_limits<float>::infinity()
                             : 0.0F;
          for (std::size_t ky = 0; ky < pass.window_h; ++ky) {
            for (std::size_t kx = 0; kx < pass.window_w; ++kx) {
              const float value = window[ky * pass.window_w + kx];
              if (pass.pool_method == nn::PoolMethod::kMax) {
                result = std::max(result, value);
              } else {
                result += value;
              }
            }
          }
          if (pass.pool_method == nn::PoolMethod::kAverage) {
            result /= window_size;
          }
          sink.write(nn::apply_activation(pass.activation, result));
        }
      }
      return Status::ok();
    }

    case PassKind::kElementwise: {
      // 1x1 window: only access (0, 0) of the channel's lane.
      for (std::size_t c = 0; c < pass.in_channels; ++c) {
        Stream* port = ports_[(c % lanes_) * lane_stride];
        for (std::size_t i = 0; i < pass.in_h * pass.in_w; ++i) {
          float value = 0.0F;
          if (!port->read(value)) {
            return internal_error("PE '" + name() + "': port stream ended early");
          }
          sink.write(nn::apply_activation(pass.activation, value));
        }
      }
      return Status::ok();
    }

    case PassKind::kInnerProduct:
      return internal_error("feature PE cannot execute an inner-product pass");
  }
  return internal_error("unhandled pass kind");
}

Status ClassifierPeModule::run() {
  // Runtime configuration load: the datamover delivers every pass's
  // weights once; they stay resident for the whole batch.
  std::vector<std::vector<float>> pass_weights(program_.passes.size());
  std::vector<std::vector<float>> pass_bias(program_.passes.size());
  for (std::size_t pi = 0; pi < program_.passes.size(); ++pi) {
    const LayerPass& pass = program_.passes[pi];
    if (pass.params == nullptr) {
      continue;
    }
    CONDOR_RETURN_IF_ERROR(read_weights(weights_, pass.params->weights.size(),
                                        pass_weights[pi], name()));
    CONDOR_RETURN_IF_ERROR(
        read_weights(weights_, pass.params->bias.size(), pass_bias[pi], name()));
  }

  for (std::size_t image = 0; image < batch_; ++image) {
    // Stage the flattened input of the first pass.
    std::vector<float> current(program_.passes.front().input_elements());
    for (float& value : current) {
      if (!in_.read(value)) {
        return internal_error("PE '" + name() + "': input stream ended early");
      }
    }
    for (std::size_t pi = 0; pi < program_.passes.size(); ++pi) {
      const LayerPass& pass = program_.passes[pi];
      switch (pass.kind) {
        case PassKind::kInnerProduct: {
          const std::size_t in_count = pass.input_elements();
          const std::size_t out_count = pass.output_elements();
          const std::vector<float>& weights = pass_weights[pi];
          std::vector<float> next(out_count, 0.0F);
          for (std::size_t l = 0; l < out_count; ++l) {
            float acc = pass.has_bias ? pass_bias[pi][l] : 0.0F;
            for (std::size_t h = 0; h < in_count; ++h) {
              acc += weights[l * in_count + h] * current[h];
            }
            next[l] = nn::apply_activation(pass.activation, acc);
          }
          current = std::move(next);
          break;
        }
        case PassKind::kElementwise: {
          for (float& value : current) {
            value = nn::apply_activation(pass.activation, value);
          }
          break;
        }
        default:
          return internal_error("classifier PE got a windowed pass");
      }
    }
    for (const float value : current) {
      out_.write(value);
    }
  }
  out_.close();
  return Status::ok();
}

}  // namespace condor::dataflow

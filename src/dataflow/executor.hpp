// AcceleratorExecutor: functional execution of an accelerator plan.
//
// For each batch it instantiates the full spatial design as a Kahn process
// network — datamover, per-PE source mux + filter chain + FIFOs + PE, the
// inter-PE streams — runs it with one thread per module, and returns the
// output blobs. Host-side softmax (when the plan defers it) is applied to
// the collected outputs, matching the generated host code of the real flow.
//
// The execution is bit-exact against nn::ReferenceEngine: identical
// accumulation orders and activation functions. That equivalence is the
// core correctness property of the reproduction and is enforced by the
// integration test suite over every model in the zoo.
#pragma once

#include <memory>

#include "common/status.hpp"
#include "dataflow/fifo.hpp"
#include "hw/accel_plan.hpp"
#include "nn/weights.hpp"
#include "tensor/tensor.hpp"

namespace condor::dataflow {

/// Statistics from one batch run (module/FIFO census for reports + tests).
struct RunStats {
  std::size_t modules = 0;
  std::size_t streams = 0;
  std::vector<FifoStats> stream_stats;
};

class AcceleratorExecutor {
 public:
  /// Validates that `weights` covers the plan's network. The WeightStore is
  /// copied in (the accelerator "loads the weights at runtime").
  static Result<AcceleratorExecutor> create(hw::AcceleratorPlan plan,
                                            nn::WeightStore weights);

  /// Runs a batch through the spatial pipeline; inputs must match the
  /// network input shape. Returns one output blob per input.
  Result<std::vector<Tensor>> run_batch(const std::vector<Tensor>& inputs);

  /// Statistics of the most recent run_batch call.
  [[nodiscard]] const RunStats& last_run_stats() const noexcept { return stats_; }

  [[nodiscard]] const hw::AcceleratorPlan& plan() const noexcept { return plan_; }

 private:
  AcceleratorExecutor(hw::AcceleratorPlan plan, nn::WeightStore weights)
      : plan_(std::move(plan)), weights_(std::move(weights)) {}

  hw::AcceleratorPlan plan_;
  nn::WeightStore weights_;
  RunStats stats_;
};

}  // namespace condor::dataflow

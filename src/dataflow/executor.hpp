// AcceleratorExecutor: functional execution of an accelerator plan.
//
// The first run_batch compiles the plan once into a CompiledDesign — the PE
// programs, the full spatial Kahn process network (datamover, per-PE source
// mux + filter chain + FIFOs + PE, the inter-PE streams) — and later
// batches reuse it: streams are re-armed (Fifo::reopen) and the same graph
// runs again on a persistent worker pool instead of re-wiring the design
// and spawning one OS thread per module per batch. The design is
// batch-size independent (the batch arrives through the RunContext), so a
// single compiled instance serves any input count.
//
// Host-side softmax (when the plan defers it) is applied to the collected
// outputs, matching the generated host code of the real flow.
//
// The execution is bit-exact against the software golden reference for the
// plan's numeric datapath (hw::AcceleratorPlan::data_type): against
// nn::ReferenceEngine for float32 plans (identical accumulation orders and
// activation functions) and against nn::QuantizedEngine for fixed16/fixed8
// plans (identical quantization helpers and layer-boundary requantization —
// see nn/numeric.hpp). That equivalence is the core correctness property of
// the reproduction and is enforced by the test suites over every
// synthesizable model in the zoo.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string_view>

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "dataflow/datamover.hpp"
#include "dataflow/fifo.hpp"
#include "dataflow/graph.hpp"
#include "dataflow/program.hpp"
#include "hw/accel_plan.hpp"
#include "nn/weights.hpp"
#include "tensor/tensor.hpp"

namespace condor::dataflow {

/// Statistics from one batch run (module/FIFO census for reports + tests).
struct RunStats {
  std::size_t modules = 0;
  std::size_t streams = 0;
  /// The microkernel dispatch level the batch executed with ("scalar",
  /// "avx2" or "avx512" — see nn/kernels_simd.hpp).
  std::string_view simd_level;
  /// Scheduler the batch ran under (always the cooperative scheduler) and
  /// the worker count it used (including the calling thread).
  std::string_view scheduler;
  std::size_t workers = 0;
  /// Bytes the datamover pushed through the weight streams this run. The
  /// first run after compilation streams every PE's slice exactly once;
  /// warm runs report zero — the residency proof the tests assert on.
  std::uint64_t weight_bytes_streamed = 0;
  /// High-water mark of images simultaneously in flight between the input
  /// mover and the output collector (>= 2 proves consecutive images
  /// overlapped in the pipeline).
  std::uint64_t images_in_flight_hwm = 0;
  /// Fused passes executed PE-locally per image (fused-pass fast path):
  /// the sum of passes-after-the-first over every PE program running with
  /// fused_local. Zero when the fast path is disabled or no PE is fused.
  std::size_t fused_local_passes = 0;
  std::vector<FifoStats> stream_stats;
  /// Per-module fire/blocked counters of the run.
  std::vector<ModuleRunStats> module_stats;
};

class AcceleratorExecutor {
 public:
  /// Validates that `weights` covers the plan's network. The WeightStore is
  /// copied in (the accelerator "loads the weights at runtime").
  static Result<AcceleratorExecutor> create(hw::AcceleratorPlan plan,
                                            nn::WeightStore weights);

  /// Shared-ownership variant: multiple executor instances (an ExecutorPool)
  /// reference one immutable plan + weight store instead of copying them per
  /// instance. Both pointers must be non-null.
  static Result<AcceleratorExecutor> create(
      std::shared_ptr<const hw::AcceleratorPlan> plan,
      std::shared_ptr<const nn::WeightStore> weights);

  /// Runs a batch through the spatial pipeline; inputs must match the
  /// network input shape (vectors convert implicitly). Returns one output
  /// blob per input. The compiled design persists across calls; only the
  /// streamed data changes.
  Result<std::vector<Tensor>> run_batch(std::span<const Tensor> inputs);

  /// Caps the extra workers this instance may grow for intra-layer compute
  /// lanes beyond what the module scheduler needs. Default: the host thread
  /// budget (common::thread_budget — CONDOR_THREADS override or
  /// hardware_concurrency). The lanes are a pure throughput lever;
  /// parallel_shards' caller participation keeps them correct at any cap.
  void set_extra_lane_worker_cap(std::size_t cap) noexcept {
    extra_lane_worker_cap_ = cap;
  }

  /// Worker-thread target handed to the cooperative scheduler (0 = derive
  /// from thread_budget(); clamped to [1, module_count()] per run).
  void set_scheduler_workers(std::size_t workers) noexcept {
    scheduler_workers_ = workers;
  }

  /// Runs this instance on an externally owned pool instead of a private
  /// one. With the cooperative scheduler many executor instances can share
  /// one host-sized pool (an ExecutorPool does exactly that): worker demand
  /// no longer scales with module_count() per instance. Must be called
  /// before the first run_batch; the pool must outlive the executor.
  void set_shared_pool(ThreadPool* pool) noexcept { shared_pool_ = pool; }

  /// Overrides the fused-pass locality fast path (default: enabled, unless
  /// the CONDOR_FUSED_LOCAL environment toggle — "0"/"off"/"false" — selects
  /// the legacy loopback round trip). Results are bit-identical either way;
  /// the fast path only removes FIFO traffic for fused intermediate passes.
  /// Flipping the value on a compiled instance drops the design, so the
  /// next run recompiles (and restreams weights).
  void set_fused_pass_locality(bool enabled) noexcept;

  /// Statistics of the most recent run_batch call.
  [[nodiscard]] const RunStats& last_run_stats() const noexcept { return stats_; }

  [[nodiscard]] const hw::AcceleratorPlan& plan() const noexcept { return *plan_; }

 private:
  /// One compiled accelerator instance. Heap-held so the modules' references
  /// into `programs` and the graph's streams stay stable across moves of
  /// the executor.
  struct CompiledDesign {
    std::vector<PeProgram> programs;
    Graph graph;
    OutputMoverModule* sink = nullptr;
    Shape output_shape;
    /// Workers the parallel_out compute lanes may occupy beyond the
    /// one-per-module baseline (sum of parallel_out - 1 over the PEs).
    std::size_t extra_lane_workers = 0;
    /// The weight streams of the design, for per-run traffic accounting
    /// (their FifoStats reset on reopen, so a warm run's writes are its own).
    std::vector<const Stream*> weight_streams;
    /// Image-framing counters maintained by the datamover halves.
    RunTelemetry telemetry;
  };

  AcceleratorExecutor(std::shared_ptr<const hw::AcceleratorPlan> plan,
                      std::shared_ptr<const nn::WeightStore> weights)
      : plan_(std::move(plan)), weights_(std::move(weights)) {}

  /// Builds programs + graph + modules into design_ (no data movement).
  Status build_design();

  /// Resolved fused-pass locality: the explicit override when set, else the
  /// CONDOR_FUSED_LOCAL environment default (on unless "0"/"off"/"false").
  [[nodiscard]] bool fused_locality_enabled() const noexcept;

  /// The pool this instance runs on: the shared pool when set, else the
  /// lazily created private pool.
  [[nodiscard]] ThreadPool* runtime_pool() const noexcept {
    return shared_pool_ != nullptr ? shared_pool_ : pool_.get();
  }

  std::shared_ptr<const hw::AcceleratorPlan> plan_;
  std::shared_ptr<const nn::WeightStore> weights_;
  std::unique_ptr<CompiledDesign> design_;
  std::unique_ptr<ThreadPool> pool_;
  ThreadPool* shared_pool_ = nullptr;
  std::size_t extra_lane_worker_cap_ = 0;  ///< 0 = thread_budget() default
  std::size_t scheduler_workers_ = 0;
  std::optional<bool> fused_local_override_;
  RunStats stats_;
};

}  // namespace condor::dataflow

// AcceleratorExecutor: functional execution of an accelerator plan.
//
// The first run_batch compiles the plan once into a CompiledDesign — the PE
// programs, the full spatial Kahn process network (datamover, per-PE source
// mux + filter chain + FIFOs + PE, the inter-PE streams) — and later
// batches reuse it: streams are re-armed (Fifo::reopen) and the same graph
// runs again on a persistent worker pool instead of re-wiring the design
// and spawning one OS thread per module per batch. The design is
// batch-size independent (the batch arrives through the RunContext), so a
// single compiled instance serves any input count.
//
// Host-side softmax (when the plan defers it) is applied to the collected
// outputs, matching the generated host code of the real flow.
//
// The execution is bit-exact against the software golden reference for the
// plan's numeric datapath (hw::AcceleratorPlan::data_type): against
// nn::ReferenceEngine for float32 plans (identical accumulation orders and
// activation functions) and against nn::QuantizedEngine for fixed16/fixed8
// plans (identical quantization helpers and layer-boundary requantization —
// see nn/numeric.hpp). That equivalence is the core correctness property of
// the reproduction and is enforced by the test suites over every
// synthesizable model in the zoo.
#pragma once

#include <memory>
#include <span>
#include <string_view>

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "dataflow/datamover.hpp"
#include "dataflow/fifo.hpp"
#include "dataflow/graph.hpp"
#include "dataflow/program.hpp"
#include "hw/accel_plan.hpp"
#include "nn/weights.hpp"
#include "tensor/tensor.hpp"

namespace condor::dataflow {

/// Statistics from one batch run (module/FIFO census for reports + tests).
struct RunStats {
  std::size_t modules = 0;
  std::size_t streams = 0;
  /// The microkernel dispatch level the batch executed with ("scalar",
  /// "avx2" or "avx512" — see nn/kernels_simd.hpp).
  std::string_view simd_level;
  std::vector<FifoStats> stream_stats;
};

class AcceleratorExecutor {
 public:
  /// Validates that `weights` covers the plan's network. The WeightStore is
  /// copied in (the accelerator "loads the weights at runtime").
  static Result<AcceleratorExecutor> create(hw::AcceleratorPlan plan,
                                            nn::WeightStore weights);

  /// Shared-ownership variant: multiple executor instances (an ExecutorPool)
  /// reference one immutable plan + weight store instead of copying them per
  /// instance. Both pointers must be non-null.
  static Result<AcceleratorExecutor> create(
      std::shared_ptr<const hw::AcceleratorPlan> plan,
      std::shared_ptr<const nn::WeightStore> weights);

  /// Runs a batch through the spatial pipeline; inputs must match the
  /// network input shape (vectors convert implicitly). Returns one output
  /// blob per input. The compiled design persists across calls; only the
  /// streamed data changes.
  Result<std::vector<Tensor>> run_batch(std::span<const Tensor> inputs);

  /// Caps the workers this instance may grow *beyond* its one-per-module
  /// correctness floor for intra-layer compute lanes. Default: the host
  /// thread budget (common::thread_budget — CONDOR_THREADS override or
  /// hardware_concurrency). An ExecutorPool divides the budget across its
  /// instances so N instances cannot oversubscribe the host N-fold.
  void set_extra_lane_worker_cap(std::size_t cap) noexcept {
    extra_lane_worker_cap_ = cap;
  }

  /// Statistics of the most recent run_batch call.
  [[nodiscard]] const RunStats& last_run_stats() const noexcept { return stats_; }

  [[nodiscard]] const hw::AcceleratorPlan& plan() const noexcept { return *plan_; }

 private:
  /// One compiled accelerator instance. Heap-held so the modules' references
  /// into `programs` and the graph's streams stay stable across moves of
  /// the executor.
  struct CompiledDesign {
    std::vector<PeProgram> programs;
    Graph graph;
    OutputMoverModule* sink = nullptr;
    Shape output_shape;
    /// Workers the parallel_out compute lanes may occupy beyond the
    /// one-per-module baseline (sum of parallel_out - 1 over the PEs).
    std::size_t extra_lane_workers = 0;
  };

  AcceleratorExecutor(std::shared_ptr<const hw::AcceleratorPlan> plan,
                      std::shared_ptr<const nn::WeightStore> weights)
      : plan_(std::move(plan)), weights_(std::move(weights)) {}

  /// Builds programs + graph + modules into design_ (no data movement).
  Status build_design();

  std::shared_ptr<const hw::AcceleratorPlan> plan_;
  std::shared_ptr<const nn::WeightStore> weights_;
  std::unique_ptr<CompiledDesign> design_;
  std::unique_ptr<ThreadPool> pool_;
  std::size_t extra_lane_worker_cap_ = 0;  ///< 0 = thread_budget() default
  RunStats stats_;
};

}  // namespace condor::dataflow

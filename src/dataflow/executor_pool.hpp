// ExecutorPool: N replicated accelerator instances behind one batch API.
//
// The paper's deployment story is multi-accelerator — an f1.16xlarge
// exposes 8 FPGA slots that can all load the same AFI — and throughput-
// driven CNN serving shards a batch across the replicas. The pool compiles
// the plan once conceptually (the hw::AcceleratorPlan and the WeightStore
// are immutable and shared by reference across instances; each instance
// lazily builds its own CompiledDesign — module graph + stream topology —
// because the KPN state is inherently per-replica) and dispatches run_batch
// dynamically:
//
//   * the batch is cut into fixed-size chunks handed out through a shared
//     work queue (an atomic cursor), NOT split statically — a straggling
//     instance takes fewer chunks instead of gating the whole batch;
//   * every chunk's outputs land at the chunk's own offset of the result
//     vector, so reassembly is order-preserving by construction;
//   * images are processed independently by the pipeline, so outputs are
//     bit-exact vs a single-instance run at any instance count and any
//     chunk assignment;
//   * on the first failure the queue is poisoned: no new chunks are handed
//     out, in-flight chunks drain cleanly, and exactly one (the first
//     recorded) error is returned.
//
// Worker accounting: all instances share ONE ThreadPool sized to the host
// thread budget (CONDOR_THREADS override or hardware_concurrency). The
// cooperative scheduler has no per-module worker floor, so N instances
// never demand N * module_count threads — adding a replica adds zero
// threads, and the shared workers flow to whichever instance has runnable
// firings.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "dataflow/executor.hpp"
#include "hw/accel_plan.hpp"
#include "nn/weights.hpp"
#include "tensor/tensor.hpp"

namespace condor::dataflow {

/// Dispatches [0, batch) in chunks of `chunk_size` across `workers`
/// concurrent runners. `run_chunk(worker, begin, end)` is invoked with
/// disjoint in-order ranges; distribution is dynamic (work queue). After
/// the first failure no new chunks are handed out; in-flight chunks finish
/// and the first error (by completion order) is returned. The generic core
/// of ExecutorPool::run_batch and cloud::F1Instance::run_batch_sharded.
Status dispatch_chunks(
    std::size_t batch, std::size_t workers, std::size_t chunk_size,
    const std::function<Status(std::size_t worker, std::size_t begin,
                               std::size_t end)>& run_chunk);

/// Per-run statistics of the pool's dynamic sharding.
struct PoolRunStats {
  std::size_t batch = 0;
  std::size_t chunk_size = 0;
  /// Images each instance ended up executing (sums to `batch` on success).
  std::vector<std::size_t> images_per_instance;
};

/// Cumulative per-instance utilization across the pool's lifetime (the
/// serving layer's census: how evenly traffic spreads over the replicas and
/// how busy each one actually is).
struct InstanceUtilization {
  std::uint64_t images = 0;        ///< images this instance executed
  std::uint64_t chunks = 0;        ///< dispatches (chunks) it pulled
  double busy_seconds = 0.0;       ///< host wall time inside run_batch chunks
};

class ExecutorPool {
 public:
  /// Validates the weights once and replicates `instances` (>= 1)
  /// executors over the shared immutable plan + weight store.
  static Result<ExecutorPool> create(hw::AcceleratorPlan plan,
                                     nn::WeightStore weights,
                                     std::size_t instances);
  static Result<ExecutorPool> create(
      std::shared_ptr<const hw::AcceleratorPlan> plan,
      std::shared_ptr<const nn::WeightStore> weights, std::size_t instances);

  /// Shards `inputs` across the instances and returns the outputs in input
  /// order, bit-exact vs a single-instance run. A single instance (or a
  /// batch of 1) short-circuits to a plain run_batch.
  Result<std::vector<Tensor>> run_batch(std::span<const Tensor> inputs);

  [[nodiscard]] std::size_t instances() const noexcept {
    return executors_.size();
  }
  [[nodiscard]] const hw::AcceleratorPlan& plan() const noexcept {
    return *plan_;
  }
  /// Stats of the most recent run_batch (sharding census).
  [[nodiscard]] const PoolRunStats& last_pool_stats() const noexcept {
    return pool_stats_;
  }
  /// Cumulative per-instance utilization since construction (one entry per
  /// instance; each entry is only ever written by that instance's driver).
  [[nodiscard]] const std::vector<InstanceUtilization>& utilization()
      const noexcept {
    return utilization_;
  }
  /// Per-instance executor access (module/stream census, tests).
  [[nodiscard]] const AcceleratorExecutor& instance(std::size_t i) const {
    return *executors_[i];
  }

 private:
  ExecutorPool(std::shared_ptr<const hw::AcceleratorPlan> plan,
               std::shared_ptr<const nn::WeightStore> weights)
      : plan_(std::move(plan)), weights_(std::move(weights)) {}

  std::shared_ptr<const hw::AcceleratorPlan> plan_;
  std::shared_ptr<const nn::WeightStore> weights_;
  /// One worker pool for every replica. Declared before executors_ so it
  /// outlives them (instances hold a raw pointer via set_shared_pool).
  std::unique_ptr<ThreadPool> shared_pool_;
  std::vector<std::unique_ptr<AcceleratorExecutor>> executors_;
  PoolRunStats pool_stats_;
  std::vector<InstanceUtilization> utilization_;
};

}  // namespace condor::dataflow

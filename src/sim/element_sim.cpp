#include "sim/element_sim.hpp"

#include <deque>

#include "common/strings.hpp"

namespace condor::sim {
namespace {

/// A hardware-style FIFO of element positions: simultaneous read+write in
/// one cycle is allowed (first-word-fall-through), which the simulation
/// realizes by stepping modules downstream-to-upstream within each cycle.
struct PositionFifo {
  std::size_t capacity = 1;
  std::deque<std::size_t> data;

  [[nodiscard]] bool can_push() const noexcept { return data.size() < capacity; }
  [[nodiscard]] bool empty() const noexcept { return data.empty(); }
  void push(std::size_t value) { data.push_back(value); }
  std::size_t pop() {
    const std::size_t value = data.front();
    data.pop_front();
    return value;
  }
};

}  // namespace

std::vector<std::size_t> planned_capacities(const ElementSimConfig& config) {
  std::vector<std::size_t> capacities;
  const auto chain =
      hw::plan_filter_chain(config.window_h, config.window_w, config.map_w);
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    capacities.push_back(chain[i].fifo_to_next_depth);
  }
  return capacities;
}

Result<ElementSimResult> simulate_memory_pipeline(const ElementSimConfig& config) {
  if (config.window_h == 0 || config.window_w == 0 || config.stride == 0 ||
      config.map_h < config.window_h || config.map_w < config.window_w) {
    return invalid_input("element sim: invalid geometry");
  }
  if (config.pe_cycles_per_window == 0 || config.port_capacity == 0) {
    return invalid_input("element sim: service and port capacity must be >= 1");
  }

  const auto chain =
      hw::plan_filter_chain(config.window_h, config.window_w, config.map_w);
  const std::size_t filter_count = chain.size();
  std::vector<std::size_t> capacities = config.fifo_capacities;
  if (capacities.empty()) {
    capacities = planned_capacities(config);
  }
  if (capacities.size() + 1 != filter_count && filter_count > 1) {
    return invalid_input(strings::format(
        "element sim: %zu FIFO capacities for a %zu-filter chain",
        capacities.size(), filter_count));
  }

  // State: source -> in[0] -> filter0 -> in[1] -> filter1 -> ... ; each
  // filter owns a port FIFO toward the PE.
  std::vector<PositionFifo> chain_in(filter_count);
  chain_in[0].capacity = 2;  // stream skid between datamover and chain head
  for (std::size_t f = 1; f < filter_count; ++f) {
    chain_in[f].capacity = std::max<std::size_t>(capacities[f - 1], 1);
  }
  std::vector<PositionFifo> ports(filter_count);
  for (PositionFifo& port : ports) {
    port.capacity = config.port_capacity;
  }

  const std::size_t elements_total = config.map_h * config.map_w;
  const std::size_t windows_total = config.out_h() * config.out_w();

  const auto in_domain = [&config](const hw::WindowAccess& access,
                                   std::size_t position) {
    const std::size_t y = position / config.map_w;
    const std::size_t x = position % config.map_w;
    if (y < access.ky || x < access.kx) {
      return false;
    }
    const std::size_t ry = y - access.ky;
    const std::size_t rx = x - access.kx;
    return ry % config.stride == 0 && rx % config.stride == 0 &&
           ry / config.stride < config.out_h() &&
           rx / config.stride < config.out_w();
  };

  ElementSimResult result;
  result.elements_streamed = elements_total;
  std::size_t next_emission = 0;
  std::size_t pe_busy = 0;
  bool first_fire_seen = false;
  constexpr std::uint64_t kMaxCycles = 100'000'000;

  while (result.windows_fired < windows_total) {
    bool progress = false;

    // -- PE (downstream first: frees port space within this cycle) --------
    if (pe_busy > 0) {
      --pe_busy;
      progress = true;
    } else {
      bool all_ready = true;
      bool any_ready = false;
      for (std::size_t f = 0; f < filter_count; ++f) {
        if (ports[f].empty()) {
          all_ready = false;
        } else {
          any_ready = true;
        }
      }
      if (all_ready) {
        for (std::size_t f = 0; f < filter_count; ++f) {
          ports[f].pop();
        }
        ++result.windows_fired;
        if (!first_fire_seen) {
          first_fire_seen = true;
          result.fill_cycles = result.total_cycles;
        }
        pe_busy = config.pe_cycles_per_window - 1;
        progress = true;
      } else if (first_fire_seen && any_ready &&
                 result.windows_fired < windows_total) {
        ++result.pe_idle_partial_cycles;
      }
    }

    // -- Filters, tail to head (consume frees upstream space in-cycle) ----
    for (std::size_t f = filter_count; f-- > 0;) {
      PositionFifo& input = chain_in[f];
      if (input.empty()) {
        continue;
      }
      const std::size_t position = input.data.front();
      const bool matches = in_domain(chain[f].access, position);
      const bool has_downstream = f + 1 < filter_count;
      if (matches && !ports[f].can_push()) {
        continue;  // blocked on the PE port
      }
      if (has_downstream && !chain_in[f + 1].can_push()) {
        continue;  // blocked on the inter-filter FIFO
      }
      input.pop();
      if (matches) {
        ports[f].push(position);
      }
      if (has_downstream) {
        chain_in[f + 1].push(position);
      }
      progress = true;
    }

    // -- Source: one element per cycle into the chain head -----------------
    if (next_emission < elements_total && chain_in[0].can_push()) {
      chain_in[0].push(next_emission++);
      progress = true;
    }

    ++result.total_cycles;
    if (!progress) {
      result.deadlocked = true;
      return result;
    }
    if (result.total_cycles > kMaxCycles) {
      return internal_error("element sim: cycle budget exceeded");
    }
  }
  return result;
}

}  // namespace condor::sim

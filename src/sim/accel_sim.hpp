// Accelerator-level timing simulation: binds the analytical per-PE timing
// (hw::PerformanceEstimate) to the event-driven pipeline model and answers
// the evaluation's questions:
//
//   * Figure 5 — mean time to process an image vs batch size,
//   * steady-state throughput and GFLOPS at the achieved clock (Tables 1-2).
//
// The simulated curve and the analytical closed form agree asymptotically;
// integration tests check both the convergence batch (≈ pipeline depth) and
// the bottleneck-limited plateau.
#pragma once

#include <vector>

#include "common/status.hpp"
#include "hw/performance_model.hpp"
#include "sim/pipeline.hpp"

namespace condor::sim {

/// One point of the Figure-5 curve.
struct BatchPoint {
  std::size_t batch = 0;
  Cycle total_cycles = 0;
  double mean_ms_per_image = 0.0;
  double gflops = 0.0;
};

struct AcceleratorSim {
  std::vector<StageSpec> stages;
  double frequency_mhz = 0.0;
  std::uint64_t flops_per_image = 0;
};

/// Builds the stage list (service = interval + fill per PE) from a plan's
/// performance estimate.
AcceleratorSim build_accelerator_sim(const hw::PerformanceEstimate& estimate);

/// Simulates one batch size.
Result<BatchPoint> simulate_batch(const AcceleratorSim& sim, std::size_t batch);

/// Sweeps batch sizes (typically powers of two) for the Figure-5 curve.
Result<std::vector<BatchPoint>> sweep_batches(const AcceleratorSim& sim,
                                              const std::vector<std::size_t>& batches);

/// Steady-state GFLOPS measured from a long simulated run (the Table 1/2
/// figure). `warm_batch` should comfortably exceed the pipeline depth.
Result<double> steady_state_gflops(const AcceleratorSim& sim,
                                   std::size_t warm_batch = 256);

}  // namespace condor::sim

// Minimal discrete-event simulation kernel.
//
// A priority queue of (time, sequence, action) with deterministic FIFO
// ordering among simultaneous events. Cycle counts are 64-bit; the
// simulator is single-threaded (events model hardware time, not host
// concurrency — the functional KPN engine covers that axis).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace condor::sim {

using Cycle = std::uint64_t;

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `at` (>= now).
  void schedule(Cycle at, Action action) {
    events_.push(Event{at, next_sequence_++, std::move(action)});
  }

  /// Schedules relative to the current time.
  void schedule_in(Cycle delay, Action action) {
    schedule(now_ + delay, std::move(action));
  }

  [[nodiscard]] Cycle now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  /// Runs events until the queue drains; returns the final time.
  Cycle run() {
    while (!events_.empty()) {
      Event event = std::move(const_cast<Event&>(events_.top()));
      events_.pop();
      now_ = event.time;
      event.action();
    }
    return now_;
  }

 private:
  struct Event {
    Cycle time;
    std::uint64_t sequence;
    Action action;

    bool operator>(const Event& other) const noexcept {
      if (time != other.time) {
        return time > other.time;
      }
      return sequence > other.sequence;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  Cycle now_ = 0;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace condor::sim

#include "sim/pipeline.hpp"

namespace condor::sim {
namespace {

/// Runtime state of one stage in the event simulation.
struct StageState {
  StageSpec spec;
  StageStats stats;
  std::size_t queued_inputs = 0;   ///< images waiting in the input buffer
  std::size_t buffered_outputs = 0;  ///< finished images parked in own buffer
  bool busy = false;
  bool blocked = false;            ///< finished image cannot leave (downstream full)
  Cycle last_state_change = 0;
};

class PipelineModel {
 public:
  PipelineModel(const std::vector<StageSpec>& specs, std::size_t batch)
      : batch_(batch) {
    stages_.reserve(specs.size());
    for (const StageSpec& spec : specs) {
      StageState state;
      state.spec = spec;
      stages_.push_back(state);
    }
  }

  PipelineRun run() {
    // Seed the whole batch at stage 0's input (the datamover can stream
    // images back to back).
    stages_.front().queued_inputs = batch_;
    try_start(0);
    queue_.run();

    PipelineRun result;
    result.total_cycles = completion_.empty() ? 0 : completion_.back();
    result.image_completion = std::move(completion_);
    for (StageState& stage : stages_) {
      result.stages.push_back(stage.stats);
    }
    return result;
  }

 private:
  void try_start(std::size_t s) {
    StageState& stage = stages_[s];
    if (stage.busy || stage.blocked || stage.queued_inputs == 0) {
      return;
    }
    stage.queued_inputs--;
    stage.busy = true;
    stage.stats.idle_cycles += queue_.now() - stage.last_state_change;
    stage.last_state_change = queue_.now();
    queue_.schedule_in(stage.spec.service_cycles, [this, s] { finish(s); });
  }

  void finish(std::size_t s) {
    StageState& stage = stages_[s];
    stage.busy = false;
    stage.stats.busy_cycles += queue_.now() - stage.last_state_change;
    stage.last_state_change = queue_.now();
    ++stage.stats.images;
    stage.buffered_outputs++;
    drain(s);
    if (stage.buffered_outputs >= stage.spec.buffer_images) {
      stage.blocked = true;  // no room to start the next image's output
    } else {
      try_start(s);
    }
  }

  /// Moves finished images from stage s's buffer to stage s+1's input (or
  /// out of the pipeline for the last stage).
  void drain(std::size_t s) {
    StageState& stage = stages_[s];
    while (stage.buffered_outputs > 0) {
      if (s + 1 == stages_.size()) {
        stage.buffered_outputs--;
        completion_.push_back(queue_.now());
        continue;
      }
      StageState& next = stages_[s + 1];
      // Downstream input queue capacity: one image in flight beyond the
      // one being served (stream FIFOs hold a fraction of an image).
      if (next.queued_inputs >= 1) {
        break;
      }
      stage.buffered_outputs--;
      next.queued_inputs++;
      try_start(s + 1);
    }
    if (stage.blocked && stage.buffered_outputs < stage.spec.buffer_images) {
      stage.stats.blocked_cycles += queue_.now() - stage.last_state_change;
      stage.last_state_change = queue_.now();
      stage.blocked = false;
      try_start(s);
    }
    // Space may have opened upstream.
    if (s > 0) {
      drain(s - 1);
    }
  }

  std::size_t batch_;
  std::vector<StageState> stages_;
  std::vector<Cycle> completion_;
  EventQueue queue_;
};

}  // namespace

Result<PipelineRun> simulate_pipeline(const std::vector<StageSpec>& stages,
                                      std::size_t batch) {
  if (stages.empty()) {
    return invalid_input("pipeline must have at least one stage");
  }
  for (const StageSpec& stage : stages) {
    if (stage.service_cycles == 0) {
      return invalid_input("stage '" + stage.name + "' has zero service time");
    }
    if (stage.buffer_images == 0) {
      return invalid_input("stage '" + stage.name + "' has zero buffer");
    }
  }
  if (batch == 0) {
    return invalid_input("batch must be positive");
  }
  PipelineModel model(stages, batch);
  return model.run();
}

}  // namespace condor::sim

#include "sim/accel_sim.hpp"

namespace condor::sim {

AcceleratorSim build_accelerator_sim(const hw::PerformanceEstimate& estimate) {
  AcceleratorSim sim;
  sim.frequency_mhz = estimate.frequency_mhz;
  sim.flops_per_image = estimate.flops_per_image;
  sim.stages.reserve(estimate.pes.size());
  for (const hw::PeTiming& pe : estimate.pes) {
    StageSpec stage;
    stage.name = pe.name;
    stage.service_cycles = pe.interval() + pe.fill_latency;
    stage.buffer_images = 1;
    sim.stages.push_back(std::move(stage));
  }
  return sim;
}

Result<BatchPoint> simulate_batch(const AcceleratorSim& sim, std::size_t batch) {
  CONDOR_ASSIGN_OR_RETURN(PipelineRun run, simulate_pipeline(sim.stages, batch));
  BatchPoint point;
  point.batch = batch;
  point.total_cycles = run.total_cycles;
  const double seconds =
      static_cast<double>(run.total_cycles) / (sim.frequency_mhz * 1e6);
  point.mean_ms_per_image = seconds * 1e3 / static_cast<double>(batch);
  point.gflops = static_cast<double>(sim.flops_per_image) *
                 static_cast<double>(batch) / seconds / 1e9;
  return point;
}

Result<std::vector<BatchPoint>> sweep_batches(
    const AcceleratorSim& sim, const std::vector<std::size_t>& batches) {
  std::vector<BatchPoint> points;
  points.reserve(batches.size());
  for (const std::size_t batch : batches) {
    CONDOR_ASSIGN_OR_RETURN(BatchPoint point, simulate_batch(sim, batch));
    points.push_back(point);
  }
  return points;
}

Result<double> steady_state_gflops(const AcceleratorSim& sim,
                                   std::size_t warm_batch) {
  CONDOR_ASSIGN_OR_RETURN(BatchPoint point, simulate_batch(sim, warm_batch));
  return point.gflops;
}

}  // namespace condor::sim

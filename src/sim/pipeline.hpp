// Cycle-approximate simulation of the high-level PE pipeline at image
// granularity.
//
// Each pipeline stage is one PE with a per-image service time (its timing
// interval + window fill); stages are separated by bounded image buffers
// (the inter-PE stream FIFOs hold far less than an image, so capacity 1 —
// a stage blocks until the next stage has drained). The simulation yields
// the exact batch completion times that produce paper Figure 5: the mean
// time per image decreases with batch size and converges to the bottleneck
// stage's service time once the batch exceeds the pipeline depth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "sim/event_queue.hpp"

namespace condor::sim {

/// Static description of one pipeline stage.
struct StageSpec {
  std::string name;
  Cycle service_cycles = 1;   ///< busy time per image
  std::size_t buffer_images = 1;  ///< output buffer capacity (images)
};

/// Per-stage measurement after a run.
struct StageStats {
  Cycle busy_cycles = 0;     ///< total cycles spent serving
  Cycle blocked_cycles = 0;  ///< finished but waiting for downstream space
  Cycle idle_cycles = 0;     ///< waiting for upstream input
  std::uint64_t images = 0;

  [[nodiscard]] double utilization(Cycle total) const noexcept {
    return total == 0 ? 0.0
                      : static_cast<double>(busy_cycles) / static_cast<double>(total);
  }
};

/// Result of simulating one batch.
struct PipelineRun {
  Cycle total_cycles = 0;
  std::vector<StageStats> stages;
  std::vector<Cycle> image_completion;  ///< completion time of each image

  [[nodiscard]] double mean_cycles_per_image() const noexcept {
    return image_completion.empty()
               ? 0.0
               : static_cast<double>(total_cycles) /
                     static_cast<double>(image_completion.size());
  }
};

/// Event-driven execution of `batch` images through `stages`.
Result<PipelineRun> simulate_pipeline(const std::vector<StageSpec>& stages,
                                      std::size_t batch);

}  // namespace condor::sim

// Element-granularity, cycle-stepped simulation of one memory subsystem:
// the stream source, the chain of stencil filters with their inter-filter
// FIFOs, the per-access PE ports, and the PE's window consumption.
//
// This is the machinery that validates the paper's central buffering claim
// (§3.2, after Cong et al. DAC'14): with the filters in lexicographically
// inverse order and each inter-filter FIFO sized as the spatial distance
// between its two accesses, "such a structure allows for concurrent reads
// of all the elements of the sliding window, without any possibility of
// on-chip memory port contention" and "for this pipeline to work correctly
// without stalls". The simulator executes the pipeline one clock at a time
// (all modules step synchronously, like the RTL) and reports:
//
//   * total cycles and the PE's post-fill stall count — zero with the
//     planned capacities (the stall-free property),
//   * deadlock detection — undersized FIFOs wedge the pipeline, which is
//     why the sizing is not merely an optimization.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "hw/accel_plan.hpp"

namespace condor::sim {

/// Geometry of the simulated layer (single input channel; multiple
/// channels repeat the identical schedule).
struct ElementSimConfig {
  std::size_t map_h = 0;
  std::size_t map_w = 0;
  std::size_t window_h = 0;
  std::size_t window_w = 0;
  std::size_t stride = 1;
  /// Cycles the PE spends per window (ceil(out_maps / parallel_out) for a
  /// convolution computing output maps sequentially; 1 when fully parallel).
  std::size_t pe_cycles_per_window = 1;
  /// Capacity of each PE port FIFO (skid between filter and PE).
  std::size_t port_capacity = 2;
  /// Per-gap FIFO capacities, in chain order (size window_h*window_w - 1).
  /// Leave empty to use the planned spatial-distance capacities.
  std::vector<std::size_t> fifo_capacities;

  [[nodiscard]] std::size_t out_h() const noexcept {
    return (map_h - window_h) / stride + 1;
  }
  [[nodiscard]] std::size_t out_w() const noexcept {
    return (map_w - window_w) / stride + 1;
  }
};

struct ElementSimResult {
  bool deadlocked = false;
  std::uint64_t total_cycles = 0;
  std::uint64_t fill_cycles = 0;    ///< cycles before the first window fired
  /// Post-fill cycles where the PE idled while some port already held data.
  /// Row-wrap schedule gaps land here too, so this is a diagnostic, not the
  /// stall-free criterion (see stall_free()).
  std::uint64_t pe_idle_partial_cycles = 0;
  std::uint64_t windows_fired = 0;
  std::uint64_t elements_streamed = 0;

  /// The paper's stall-free property, measured as throughput: the run
  /// finishes at the source-limited minimum — one element per cycle plus a
  /// drain margin — so the reuse pipeline never throttled the stream.
  [[nodiscard]] bool stall_free() const noexcept {
    return !deadlocked &&
           total_cycles <= elements_streamed + windows_fired / 16 + 16;
  }
};

/// The planned (spatial-distance) capacities for the config's chain.
std::vector<std::size_t> planned_capacities(const ElementSimConfig& config);

/// Runs the cycle-stepped simulation until all output windows fire or no
/// module can make progress (deadlock). Fails on invalid geometry.
Result<ElementSimResult> simulate_memory_pipeline(const ElementSimConfig& config);

}  // namespace condor::sim

#include "onnx/onnx_pb.hpp"

#include <cstring>

#include "common/byte_io.hpp"

namespace condor::onnx {

using protowire::Reader;
using protowire::Tag;
using protowire::WireType;
using protowire::Writer;

Result<std::vector<float>> TensorProto::values() const {
  if (data_type != kFloat) {
    return unsupported("ONNX tensor '" + name + "' is not FLOAT");
  }
  if (!raw_data.empty()) {
    if (raw_data.size() % 4 != 0) {
      return invalid_input("ONNX tensor '" + name +
                           "': raw_data not a multiple of 4 bytes");
    }
    std::vector<float> out(raw_data.size() / 4);
    std::memcpy(out.data(), raw_data.data(), raw_data.size());
    return out;
  }
  return float_data;
}

std::size_t TensorProto::element_count() const noexcept {
  std::size_t count = 1;
  for (const std::int64_t dim : dims) {
    count *= static_cast<std::size_t>(dim);
  }
  return count;
}

const AttributeProto* NodeProto::find_attribute(std::string_view attr) const {
  for (const AttributeProto& a : attribute) {
    if (a.name == attr) {
      return &a;
    }
  }
  return nullptr;
}

const TensorProto* GraphProto::find_initializer(std::string_view tensor) const {
  for (const TensorProto& t : initializer) {
    if (t.name == tensor) {
      return &t;
    }
  }
  return nullptr;
}

namespace {

// ---- encoders --------------------------------------------------------------

void put_packed_i64(Writer& out, std::uint32_t field,
                    const std::vector<std::int64_t>& values) {
  if (values.empty()) {
    return;
  }
  ByteWriter payload;
  for (const std::int64_t value : values) {
    protowire::put_varint(payload, static_cast<std::uint64_t>(value));
  }
  out.bytes_field(field, payload.view());
}

Writer encode_tensor(const TensorProto& tensor) {
  Writer out;
  put_packed_i64(out, 1, tensor.dims);
  out.int_field(2, tensor.data_type);
  if (!tensor.float_data.empty()) {
    out.packed_floats(4, tensor.float_data);
  }
  out.string_field(8, tensor.name);
  if (!tensor.raw_data.empty()) {
    out.bytes_field(9, tensor.raw_data);
  }
  return out;
}

Writer encode_attribute(const AttributeProto& attr) {
  Writer out;
  out.string_field(1, attr.name);
  switch (attr.type) {
    case AttributeProto::Type::kFloat:
      out.float_field(2, attr.f);
      break;
    case AttributeProto::Type::kInt:
      out.int_field(3, attr.i);
      break;
    case AttributeProto::Type::kString:
      out.string_field(4, attr.s);
      break;
    case AttributeProto::Type::kInts:
      put_packed_i64(out, 8, attr.ints);
      break;
    case AttributeProto::Type::kUndefined:
      break;
  }
  out.int_field(20, static_cast<std::int64_t>(attr.type));
  return out;
}

Writer encode_node(const NodeProto& node) {
  Writer out;
  for (const std::string& name : node.input) out.string_field(1, name);
  for (const std::string& name : node.output) out.string_field(2, name);
  out.string_field(3, node.name);
  out.string_field(4, node.op_type);
  for (const AttributeProto& attr : node.attribute) {
    out.message_field(5, encode_attribute(attr));
  }
  return out;
}

Writer encode_value_info(const ValueInfoProto& info) {
  // ValueInfoProto { name=1, type=2: TypeProto { tensor_type=1:
  //   Tensor { elem_type=1, shape=2: TensorShapeProto { dim=1:
  //     Dimension { dim_value=1 } } } } }
  Writer shape;
  for (const std::int64_t value : info.shape) {
    Writer dim;
    dim.int_field(1, value);
    shape.message_field(1, dim);
  }
  Writer tensor;
  tensor.int_field(1, TensorProto::kFloat);
  tensor.message_field(2, shape);
  Writer type;
  type.message_field(1, tensor);
  Writer out;
  out.string_field(1, info.name);
  out.message_field(2, type);
  return out;
}

Writer encode_graph(const GraphProto& graph) {
  Writer out;
  for (const NodeProto& node : graph.node) {
    out.message_field(1, encode_node(node));
  }
  out.string_field(2, graph.name);
  for (const TensorProto& tensor : graph.initializer) {
    out.message_field(5, encode_tensor(tensor));
  }
  for (const ValueInfoProto& info : graph.input) {
    out.message_field(11, encode_value_info(info));
  }
  for (const ValueInfoProto& info : graph.output) {
    out.message_field(12, encode_value_info(info));
  }
  return out;
}

// ---- decoders --------------------------------------------------------------

Result<std::vector<std::int64_t>> decode_packed_i64(Reader& in, const Tag& tag) {
  std::vector<std::int64_t> out;
  if (tag.wire_type == WireType::kVarint) {
    CONDOR_ASSIGN_OR_RETURN(std::uint64_t value, in.read_varint());
    out.push_back(static_cast<std::int64_t>(value));
    return out;
  }
  CONDOR_ASSIGN_OR_RETURN(auto payload, in.read_len());
  ByteReader values(payload);
  while (!values.at_end()) {
    CONDOR_ASSIGN_OR_RETURN(std::uint64_t value, protowire::get_varint(values));
    out.push_back(static_cast<std::int64_t>(value));
  }
  return out;
}

Result<TensorProto> decode_tensor(std::span<const std::byte> data) {
  TensorProto tensor;
  Reader in(data);
  while (!in.at_end()) {
    CONDOR_ASSIGN_OR_RETURN(Tag tag, in.read_tag());
    switch (tag.field_number) {
      case 1: {
        CONDOR_ASSIGN_OR_RETURN(auto dims, decode_packed_i64(in, tag));
        tensor.dims.insert(tensor.dims.end(), dims.begin(), dims.end());
        break;
      }
      case 2: {
        CONDOR_ASSIGN_OR_RETURN(std::uint64_t value, in.read_varint());
        tensor.data_type = static_cast<std::int32_t>(value);
        break;
      }
      case 4: {
        CONDOR_RETURN_IF_ERROR(in.read_packed_floats(tag, tensor.float_data));
        break;
      }
      case 8: {
        CONDOR_ASSIGN_OR_RETURN(tensor.name, in.read_string());
        break;
      }
      case 9: {
        CONDOR_ASSIGN_OR_RETURN(auto payload, in.read_len());
        tensor.raw_data.assign(payload.begin(), payload.end());
        break;
      }
      default:
        CONDOR_RETURN_IF_ERROR(in.skip(tag));
    }
  }
  return tensor;
}

Result<AttributeProto> decode_attribute(std::span<const std::byte> data) {
  AttributeProto attr;
  Reader in(data);
  while (!in.at_end()) {
    CONDOR_ASSIGN_OR_RETURN(Tag tag, in.read_tag());
    switch (tag.field_number) {
      case 1: {
        CONDOR_ASSIGN_OR_RETURN(attr.name, in.read_string());
        break;
      }
      case 2: {
        CONDOR_ASSIGN_OR_RETURN(attr.f, in.read_float());
        break;
      }
      case 3: {
        CONDOR_ASSIGN_OR_RETURN(std::uint64_t value, in.read_varint());
        attr.i = static_cast<std::int64_t>(value);
        break;
      }
      case 4: {
        CONDOR_ASSIGN_OR_RETURN(attr.s, in.read_string());
        break;
      }
      case 8: {
        CONDOR_ASSIGN_OR_RETURN(auto values, decode_packed_i64(in, tag));
        attr.ints.insert(attr.ints.end(), values.begin(), values.end());
        break;
      }
      case 20: {
        CONDOR_ASSIGN_OR_RETURN(std::uint64_t value, in.read_varint());
        attr.type = static_cast<AttributeProto::Type>(value);
        break;
      }
      default:
        CONDOR_RETURN_IF_ERROR(in.skip(tag));
    }
  }
  // Old exporters omit the type tag; infer from the populated field.
  if (attr.type == AttributeProto::Type::kUndefined) {
    if (!attr.ints.empty()) {
      attr.type = AttributeProto::Type::kInts;
    } else if (!attr.s.empty()) {
      attr.type = AttributeProto::Type::kString;
    } else {
      attr.type = AttributeProto::Type::kInt;
    }
  }
  return attr;
}

Result<NodeProto> decode_node(std::span<const std::byte> data) {
  NodeProto node;
  Reader in(data);
  while (!in.at_end()) {
    CONDOR_ASSIGN_OR_RETURN(Tag tag, in.read_tag());
    switch (tag.field_number) {
      case 1: {
        CONDOR_ASSIGN_OR_RETURN(std::string name, in.read_string());
        node.input.push_back(std::move(name));
        break;
      }
      case 2: {
        CONDOR_ASSIGN_OR_RETURN(std::string name, in.read_string());
        node.output.push_back(std::move(name));
        break;
      }
      case 3: {
        CONDOR_ASSIGN_OR_RETURN(node.name, in.read_string());
        break;
      }
      case 4: {
        CONDOR_ASSIGN_OR_RETURN(node.op_type, in.read_string());
        break;
      }
      case 5: {
        CONDOR_ASSIGN_OR_RETURN(auto payload, in.read_len());
        CONDOR_ASSIGN_OR_RETURN(AttributeProto attr, decode_attribute(payload));
        node.attribute.push_back(std::move(attr));
        break;
      }
      default:
        CONDOR_RETURN_IF_ERROR(in.skip(tag));
    }
  }
  return node;
}

Result<ValueInfoProto> decode_value_info(std::span<const std::byte> data) {
  ValueInfoProto info;
  Reader in(data);
  while (!in.at_end()) {
    CONDOR_ASSIGN_OR_RETURN(Tag tag, in.read_tag());
    if (tag.field_number == 1) {
      CONDOR_ASSIGN_OR_RETURN(info.name, in.read_string());
    } else if (tag.field_number == 2 && tag.wire_type == WireType::kLen) {
      // TypeProto -> tensor_type -> shape -> dim -> dim_value.
      CONDOR_ASSIGN_OR_RETURN(auto type_payload, in.read_len());
      Reader type(type_payload);
      while (!type.at_end()) {
        CONDOR_ASSIGN_OR_RETURN(Tag type_tag, type.read_tag());
        if (type_tag.field_number != 1 || type_tag.wire_type != WireType::kLen) {
          CONDOR_RETURN_IF_ERROR(type.skip(type_tag));
          continue;
        }
        CONDOR_ASSIGN_OR_RETURN(auto tensor_payload, type.read_len());
        Reader tensor(tensor_payload);
        while (!tensor.at_end()) {
          CONDOR_ASSIGN_OR_RETURN(Tag tensor_tag, tensor.read_tag());
          if (tensor_tag.field_number != 2 ||
              tensor_tag.wire_type != WireType::kLen) {
            CONDOR_RETURN_IF_ERROR(tensor.skip(tensor_tag));
            continue;
          }
          CONDOR_ASSIGN_OR_RETURN(auto shape_payload, tensor.read_len());
          Reader shape(shape_payload);
          while (!shape.at_end()) {
            CONDOR_ASSIGN_OR_RETURN(Tag dim_tag, shape.read_tag());
            if (dim_tag.field_number != 1 || dim_tag.wire_type != WireType::kLen) {
              CONDOR_RETURN_IF_ERROR(shape.skip(dim_tag));
              continue;
            }
            CONDOR_ASSIGN_OR_RETURN(auto dim_payload, shape.read_len());
            Reader dim(dim_payload);
            std::int64_t value = 0;
            while (!dim.at_end()) {
              CONDOR_ASSIGN_OR_RETURN(Tag value_tag, dim.read_tag());
              if (value_tag.field_number == 1 &&
                  value_tag.wire_type == WireType::kVarint) {
                CONDOR_ASSIGN_OR_RETURN(std::uint64_t raw, dim.read_varint());
                value = static_cast<std::int64_t>(raw);
              } else {
                CONDOR_RETURN_IF_ERROR(dim.skip(value_tag));
              }
            }
            info.shape.push_back(value);
          }
        }
      }
    } else {
      CONDOR_RETURN_IF_ERROR(in.skip(tag));
    }
  }
  return info;
}

Result<GraphProto> decode_graph(std::span<const std::byte> data) {
  GraphProto graph;
  Reader in(data);
  while (!in.at_end()) {
    CONDOR_ASSIGN_OR_RETURN(Tag tag, in.read_tag());
    switch (tag.field_number) {
      case 1: {
        CONDOR_ASSIGN_OR_RETURN(auto payload, in.read_len());
        CONDOR_ASSIGN_OR_RETURN(NodeProto node, decode_node(payload));
        graph.node.push_back(std::move(node));
        break;
      }
      case 2: {
        CONDOR_ASSIGN_OR_RETURN(graph.name, in.read_string());
        break;
      }
      case 5: {
        CONDOR_ASSIGN_OR_RETURN(auto payload, in.read_len());
        CONDOR_ASSIGN_OR_RETURN(TensorProto tensor, decode_tensor(payload));
        graph.initializer.push_back(std::move(tensor));
        break;
      }
      case 11: {
        CONDOR_ASSIGN_OR_RETURN(auto payload, in.read_len());
        CONDOR_ASSIGN_OR_RETURN(ValueInfoProto info, decode_value_info(payload));
        graph.input.push_back(std::move(info));
        break;
      }
      case 12: {
        CONDOR_ASSIGN_OR_RETURN(auto payload, in.read_len());
        CONDOR_ASSIGN_OR_RETURN(ValueInfoProto info, decode_value_info(payload));
        graph.output.push_back(std::move(info));
        break;
      }
      default:
        CONDOR_RETURN_IF_ERROR(in.skip(tag));
    }
  }
  return graph;
}

}  // namespace

std::vector<std::byte> encode_model(const ModelProto& model) {
  Writer out;
  out.int_field(1, model.ir_version);
  if (!model.producer_name.empty()) {
    out.string_field(2, model.producer_name);
  }
  if (!model.producer_version.empty()) {
    out.string_field(3, model.producer_version);
  }
  out.message_field(7, encode_graph(model.graph));
  for (const OperatorSetId& opset : model.opset_import) {
    Writer entry;
    if (!opset.domain.empty()) {
      entry.string_field(1, opset.domain);
    }
    entry.int_field(2, opset.version);
    out.message_field(8, entry);
  }
  return std::move(out).take();
}

Result<ModelProto> decode_model(std::span<const std::byte> data) {
  ModelProto model;
  Reader in(data);
  bool saw_graph = false;
  while (!in.at_end()) {
    CONDOR_ASSIGN_OR_RETURN(Tag tag, in.read_tag());
    switch (tag.field_number) {
      case 1: {
        CONDOR_ASSIGN_OR_RETURN(std::uint64_t value, in.read_varint());
        model.ir_version = static_cast<std::int64_t>(value);
        break;
      }
      case 2: {
        CONDOR_ASSIGN_OR_RETURN(model.producer_name, in.read_string());
        break;
      }
      case 3: {
        CONDOR_ASSIGN_OR_RETURN(model.producer_version, in.read_string());
        break;
      }
      case 7: {
        CONDOR_ASSIGN_OR_RETURN(auto payload, in.read_len());
        CONDOR_ASSIGN_OR_RETURN(model.graph, decode_graph(payload));
        saw_graph = true;
        break;
      }
      case 8: {
        CONDOR_ASSIGN_OR_RETURN(auto payload, in.read_len());
        Reader entry(payload);
        OperatorSetId opset;
        while (!entry.at_end()) {
          CONDOR_ASSIGN_OR_RETURN(Tag entry_tag, entry.read_tag());
          if (entry_tag.field_number == 1) {
            CONDOR_ASSIGN_OR_RETURN(opset.domain, entry.read_string());
          } else if (entry_tag.field_number == 2) {
            CONDOR_ASSIGN_OR_RETURN(std::uint64_t version, entry.read_varint());
            opset.version = static_cast<std::int64_t>(version);
          } else {
            CONDOR_RETURN_IF_ERROR(entry.skip(entry_tag));
          }
        }
        model.opset_import.push_back(std::move(opset));
        break;
      }
      default:
        CONDOR_RETURN_IF_ERROR(in.skip(tag));
    }
  }
  if (!saw_graph) {
    return invalid_input("ONNX model has no graph");
  }
  return model;
}

}  // namespace condor::onnx

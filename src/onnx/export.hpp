// Condor → ONNX export: synthesizes `.onnx` fixtures from the model zoo so
// tests and examples can exercise the ONNX frontend exactly as a user with
// a real exported model would (mirrors caffe/export.hpp).
#pragma once

#include "common/status.hpp"
#include "nn/network.hpp"
#include "nn/weights.hpp"
#include "onnx/onnx_pb.hpp"

namespace condor::onnx {

/// Builds a ModelProto: Conv/MaxPool/AveragePool/Gemm(transB=1) nodes,
/// separate activation nodes for fused activations, a Flatten before the
/// first Gemm, weights as raw_data initializers.
Result<ModelProto> to_model_proto(const nn::Network& network,
                                  const nn::WeightStore& weights);

/// Serialized `.onnx` bytes.
Result<std::vector<std::byte>> to_onnx(const nn::Network& network,
                                       const nn::WeightStore& weights);

}  // namespace condor::onnx

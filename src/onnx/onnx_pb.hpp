// Typed subset of the ONNX protobuf schema with binary wire codec.
//
// The paper lists ONNX support among its future frontends ("we are
// considering adding support to the ONNX format", §3.1.1); this module
// implements that extension. Field numbers match upstream onnx.proto, so
// real `.onnx` files restricted to this subset decode correctly and files
// produced by the encoder are structurally valid ONNX models.
//
// Covered messages: ModelProto, GraphProto, NodeProto, AttributeProto,
// TensorProto (FLOAT, float_data or raw_data), ValueInfoProto with static
// tensor shapes, OperatorSetIdProto.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "protowire/wire.hpp"

namespace condor::onnx {

/// onnx.TensorProto (subset: FLOAT tensors).
struct TensorProto {
  static constexpr std::int32_t kFloat = 1;  // DataType.FLOAT

  std::vector<std::int64_t> dims;  // 1
  std::int32_t data_type = kFloat;  // 2
  std::vector<float> float_data;   // 4 (used when raw_data absent)
  std::string name;                // 8
  std::vector<std::byte> raw_data;  // 9 (little-endian floats)

  /// The payload as floats, decoding raw_data when present.
  [[nodiscard]] Result<std::vector<float>> values() const;
  [[nodiscard]] std::size_t element_count() const noexcept;
};

/// onnx.AttributeProto (subset: INT, FLOAT, STRING, INTS).
struct AttributeProto {
  enum class Type : std::int32_t {
    kUndefined = 0,
    kFloat = 1,
    kInt = 2,
    kString = 3,
    kInts = 7,
  };
  std::string name;                 // 1
  float f = 0.0F;                   // 2
  std::int64_t i = 0;               // 3
  std::string s;                    // 4
  std::vector<std::int64_t> ints;   // 8
  Type type = Type::kUndefined;     // 20
};

/// onnx.NodeProto.
struct NodeProto {
  std::vector<std::string> input;   // 1
  std::vector<std::string> output;  // 2
  std::string name;                 // 3
  std::string op_type;              // 4
  std::vector<AttributeProto> attribute;  // 5

  [[nodiscard]] const AttributeProto* find_attribute(std::string_view name) const;
};

/// onnx.ValueInfoProto with a static FLOAT tensor type.
struct ValueInfoProto {
  std::string name;
  std::vector<std::int64_t> shape;  ///< dim_value entries (dim_param unsupported)
};

/// onnx.GraphProto.
struct GraphProto {
  std::vector<NodeProto> node;          // 1
  std::string name;                     // 2
  std::vector<TensorProto> initializer;  // 5
  std::vector<ValueInfoProto> input;    // 11
  std::vector<ValueInfoProto> output;   // 12

  [[nodiscard]] const TensorProto* find_initializer(std::string_view name) const;
};

/// onnx.OperatorSetIdProto.
struct OperatorSetId {
  std::string domain;      // 1 ("" = ai.onnx)
  std::int64_t version = 0;  // 2
};

/// onnx.ModelProto.
struct ModelProto {
  std::int64_t ir_version = 7;   // 1
  std::string producer_name;     // 2
  std::string producer_version;  // 3
  GraphProto graph;              // 7
  std::vector<OperatorSetId> opset_import;  // 8
};

std::vector<std::byte> encode_model(const ModelProto& model);
Result<ModelProto> decode_model(std::span<const std::byte> data);

}  // namespace condor::onnx

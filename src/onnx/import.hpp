// ONNX → Condor import (frontend extension, paper §3.1.1 future work).
//
// Supports the single-chain CNN subset Condor accelerates:
//   Conv (group 1, symmetric pads), MaxPool / AveragePool,
//   Gemm (transB=1) and MatMul [+ Add] for fully-connected layers,
//   Relu / Sigmoid / Tanh (fused into the producing layer when in-chain),
//   Flatten / Reshape (inference no-ops; Condor flattens implicitly),
//   Softmax.
// Weights come from graph initializers; the graph input supplies the
// N,C,H,W (or C,H,W) blob shape.
#pragma once

#include "common/status.hpp"
#include "nn/network.hpp"
#include "nn/weights.hpp"
#include "onnx/onnx_pb.hpp"

namespace condor::onnx {

struct OnnxModel {
  nn::Network network;
  nn::WeightStore weights;
};

/// Converts a decoded ModelProto.
Result<OnnxModel> import_model(const ModelProto& model);

/// Decodes and converts `.onnx` bytes.
Result<OnnxModel> load_onnx_model(std::span<const std::byte> data);

}  // namespace condor::onnx

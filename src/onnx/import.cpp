#include "onnx/import.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/strings.hpp"

namespace condor::onnx {
namespace {

constexpr std::string_view kTag = "onnx-import";

Result<nn::Activation> activation_for_op(std::string_view op) {
  if (op == "Relu") {
    return nn::Activation::kReLU;
  }
  if (op == "Sigmoid") {
    return nn::Activation::kSigmoid;
  }
  if (op == "Tanh") {
    return nn::Activation::kTanH;
  }
  return invalid_input("not an activation op");
}

/// Reads an INTS attribute, or the fallback when absent.
std::vector<std::int64_t> ints_or(const NodeProto& node, std::string_view name,
                                  std::vector<std::int64_t> fallback) {
  const AttributeProto* attr = node.find_attribute(name);
  return attr != nullptr && !attr->ints.empty() ? attr->ints
                                                : std::move(fallback);
}

/// Validates symmetric pads [t, l, b, r] and returns the per-side amount.
Result<std::size_t> symmetric_pad(const NodeProto& node) {
  const auto pads = ints_or(node, "pads", {0, 0, 0, 0});
  if (pads.size() != 4) {
    return unsupported("node '" + node.name + "': pads must have 4 entries");
  }
  if (!(pads[0] == pads[1] && pads[1] == pads[2] && pads[2] == pads[3])) {
    return unsupported("node '" + node.name +
                       "': asymmetric padding is not supported");
  }
  return static_cast<std::size_t>(pads[0]);
}

Result<std::size_t> uniform_stride(const NodeProto& node) {
  const auto strides = ints_or(node, "strides", {1, 1});
  if (strides.size() != 2 || strides[0] != strides[1]) {
    return unsupported("node '" + node.name +
                       "': only uniform 2-D strides are supported");
  }
  return static_cast<std::size_t>(strides[0]);
}

Tensor tensor_from_proto(const TensorProto& proto, const Shape& shape) {
  return Tensor(shape, proto.values().value());
}

}  // namespace

Result<OnnxModel> import_model(const ModelProto& model) {
  const GraphProto& graph = model.graph;
  OnnxModel out;
  out.network.set_name(graph.name.empty() ? "onnx-net" : graph.name);

  // Graph input = the value-info entry that is not an initializer.
  const ValueInfoProto* graph_input = nullptr;
  for (const ValueInfoProto& info : graph.input) {
    if (graph.find_initializer(info.name) == nullptr) {
      if (graph_input != nullptr) {
        return unsupported("ONNX graph has multiple data inputs");
      }
      graph_input = &info;
    }
  }
  if (graph_input == nullptr) {
    return invalid_input("ONNX graph has no data input");
  }
  nn::LayerSpec input;
  input.kind = nn::LayerKind::kInput;
  input.name = graph_input->name;
  const auto& dims = graph_input->shape;
  if (dims.size() == 4) {
    input.input_channels = static_cast<std::size_t>(dims[1]);
    input.input_height = static_cast<std::size_t>(dims[2]);
    input.input_width = static_cast<std::size_t>(dims[3]);
  } else if (dims.size() == 3) {
    input.input_channels = static_cast<std::size_t>(dims[0]);
    input.input_height = static_cast<std::size_t>(dims[1]);
    input.input_width = static_cast<std::size_t>(dims[2]);
  } else {
    return unsupported(strings::format(
        "ONNX input '%s' must be rank 3 or 4, got rank %zu",
        graph_input->name.c_str(), dims.size()));
  }
  out.network.add(input);

  // Walk the (topologically ordered) single chain.
  std::string current_blob = graph_input->name;
  // Pending MatMul awaiting a bias Add fold.
  std::string pending_matmul_layer;

  for (const NodeProto& node : graph.node) {
    const std::string& op = node.op_type;
    const auto data_input_is_current = [&]() {
      return !node.input.empty() && node.input[0] == current_blob;
    };
    if (!data_input_is_current()) {
      return unsupported("node '" + node.name +
                         "' does not continue the single chain (input '" +
                         (node.input.empty() ? "<none>" : node.input[0]) +
                         "', expected '" + current_blob + "')");
    }
    if (node.output.empty()) {
      return invalid_input("node '" + node.name + "' has no output");
    }
    const std::string node_name =
        node.name.empty() ? node.output[0] : node.name;

    if (op == "Conv") {
      if (node.input.size() < 2) {
        return invalid_input("Conv '" + node_name + "' needs a weight input");
      }
      const TensorProto* weight = graph.find_initializer(node.input[1]);
      if (weight == nullptr || weight->dims.size() != 4) {
        return invalid_input("Conv '" + node_name +
                             "': weights must be a rank-4 initializer");
      }
      if (const AttributeProto* group = node.find_attribute("group");
          group != nullptr && group->i != 1) {
        return unsupported("Conv '" + node_name + "': grouped convolution");
      }
      nn::LayerSpec layer;
      layer.kind = nn::LayerKind::kConvolution;
      layer.name = node_name;
      layer.num_output = static_cast<std::size_t>(weight->dims[0]);
      const auto kernel = ints_or(node, "kernel_shape",
                                  {weight->dims[2], weight->dims[3]});
      layer.kernel_h = static_cast<std::size_t>(kernel[0]);
      layer.kernel_w = static_cast<std::size_t>(kernel.size() > 1 ? kernel[1]
                                                                  : kernel[0]);
      CONDOR_ASSIGN_OR_RETURN(layer.stride, uniform_stride(node));
      CONDOR_ASSIGN_OR_RETURN(layer.pad, symmetric_pad(node));
      layer.has_bias = node.input.size() > 2;

      nn::LayerParameters params;
      params.weights = tensor_from_proto(
          *weight, Shape{static_cast<std::size_t>(weight->dims[0]),
                         static_cast<std::size_t>(weight->dims[1]),
                         static_cast<std::size_t>(weight->dims[2]),
                         static_cast<std::size_t>(weight->dims[3])});
      if (layer.has_bias) {
        const TensorProto* bias = graph.find_initializer(node.input[2]);
        if (bias == nullptr) {
          return invalid_input("Conv '" + node_name + "': bias not found");
        }
        params.bias = tensor_from_proto(*bias, Shape{layer.num_output});
      }
      out.weights.set(layer.name, std::move(params));
      out.network.add(std::move(layer));
      current_blob = node.output[0];
      continue;
    }

    if (op == "MaxPool" || op == "AveragePool") {
      nn::LayerSpec layer;
      layer.kind = nn::LayerKind::kPooling;
      layer.name = node_name;
      layer.pool_method =
          op == "MaxPool" ? nn::PoolMethod::kMax : nn::PoolMethod::kAverage;
      const auto kernel = ints_or(node, "kernel_shape", {});
      if (kernel.empty()) {
        return invalid_input(op + " '" + node_name + "': missing kernel_shape");
      }
      layer.kernel_h = static_cast<std::size_t>(kernel[0]);
      layer.kernel_w =
          static_cast<std::size_t>(kernel.size() > 1 ? kernel[1] : kernel[0]);
      CONDOR_ASSIGN_OR_RETURN(layer.stride, uniform_stride(node));
      CONDOR_ASSIGN_OR_RETURN(std::size_t pad, symmetric_pad(node));
      if (pad != 0) {
        return unsupported(op + " '" + node_name + "': padded pooling");
      }
      out.network.add(std::move(layer));
      current_blob = node.output[0];
      continue;
    }

    if (op == "Gemm" || op == "MatMul") {
      if (node.input.size() < 2) {
        return invalid_input(op + " '" + node_name + "' needs a weight input");
      }
      const TensorProto* weight = graph.find_initializer(node.input[1]);
      if (weight == nullptr || weight->dims.size() != 2) {
        return invalid_input(op + " '" + node_name +
                             "': weights must be a rank-2 initializer");
      }
      bool trans_b = false;
      if (op == "Gemm") {
        if (const AttributeProto* attr = node.find_attribute("transB")) {
          trans_b = attr->i != 0;
        }
        if (const AttributeProto* attr = node.find_attribute("alpha");
            attr != nullptr && attr->f != 1.0F) {
          return unsupported("Gemm '" + node_name + "': alpha != 1");
        }
        if (const AttributeProto* attr = node.find_attribute("beta");
            attr != nullptr && attr->f != 1.0F) {
          return unsupported("Gemm '" + node_name + "': beta != 1");
        }
      }
      const auto rows = static_cast<std::size_t>(weight->dims[0]);
      const auto cols = static_cast<std::size_t>(weight->dims[1]);
      const std::size_t out_count = trans_b ? rows : cols;
      const std::size_t in_count = trans_b ? cols : rows;

      nn::LayerSpec layer;
      layer.kind = nn::LayerKind::kInnerProduct;
      layer.name = node_name;
      layer.num_output = out_count;
      layer.has_bias = op == "Gemm" && node.input.size() > 2;

      nn::LayerParameters params;
      CONDOR_ASSIGN_OR_RETURN(auto raw, weight->values());
      if (trans_b) {
        params.weights = Tensor(Shape{out_count, in_count}, std::move(raw));
      } else {
        // Stored [in, out]; Condor wants [out, in].
        Tensor transposed(Shape{out_count, in_count});
        for (std::size_t r = 0; r < in_count; ++r) {
          for (std::size_t c = 0; c < out_count; ++c) {
            transposed[c * in_count + r] = raw[r * out_count + c];
          }
        }
        params.weights = std::move(transposed);
      }
      if (layer.has_bias) {
        const TensorProto* bias = graph.find_initializer(node.input[2]);
        if (bias == nullptr) {
          return invalid_input("Gemm '" + node_name + "': bias not found");
        }
        params.bias = tensor_from_proto(*bias, Shape{out_count});
      }
      out.weights.set(layer.name, std::move(params));
      out.network.add(std::move(layer));
      if (op == "MatMul") {
        pending_matmul_layer = node_name;
      }
      current_blob = node.output[0];
      continue;
    }

    if (op == "Add" && !pending_matmul_layer.empty()) {
      // Bias fold: MatMul output + initializer vector.
      const TensorProto* bias =
          node.input.size() > 1 ? graph.find_initializer(node.input[1]) : nullptr;
      if (bias == nullptr) {
        return unsupported("Add '" + node_name + "': only bias folds after "
                           "MatMul are supported");
      }
      nn::LayerSpec& fc = out.network.layers().back();
      fc.has_bias = true;
      const nn::LayerParameters* existing = out.weights.find(fc.name);
      nn::LayerParameters params;
      params.weights = existing->weights;
      params.bias = tensor_from_proto(*bias, Shape{fc.num_output});
      out.weights.set(fc.name, std::move(params));
      pending_matmul_layer.clear();
      current_blob = node.output[0];
      continue;
    }

    if (auto activation = activation_for_op(op); activation.is_ok()) {
      nn::LayerSpec* producer =
          out.network.layers().size() > 1 ? &out.network.layers().back() : nullptr;
      if (producer != nullptr && producer->has_weights() &&
          producer->activation == nn::Activation::kNone) {
        producer->activation = activation.value();
        CONDOR_LOG_DEBUG(kTag) << "fused " << op << " '" << node_name
                               << "' into '" << producer->name << "'";
      } else {
        nn::LayerSpec layer;
        layer.kind = nn::LayerKind::kActivation;
        layer.name = node_name;
        layer.activation = activation.value();
        out.network.add(std::move(layer));
      }
      current_blob = node.output[0];
      continue;
    }

    if (op == "Flatten" || op == "Reshape") {
      current_blob = node.output[0];  // implicit in Condor's shape inference
      continue;
    }

    if (op == "Softmax") {
      nn::LayerSpec layer;
      layer.kind = nn::LayerKind::kSoftmax;
      layer.name = node_name;
      out.network.add(std::move(layer));
      current_blob = node.output[0];
      continue;
    }

    return unsupported("ONNX op '" + op + "' (node '" + node_name +
                       "') is not supported by Condor");
  }

  CONDOR_RETURN_IF_ERROR(out.network.validate());
  CONDOR_RETURN_IF_ERROR(out.weights.validate_against(out.network));
  CONDOR_LOG_INFO(kTag) << "imported '" << out.network.name() << "' ("
                        << out.network.layer_count() << " layers)";
  return out;
}

Result<OnnxModel> load_onnx_model(std::span<const std::byte> data) {
  CONDOR_ASSIGN_OR_RETURN(ModelProto model, decode_model(data));
  return import_model(model);
}

}  // namespace condor::onnx

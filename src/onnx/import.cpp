#include "onnx/import.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.hpp"
#include "common/strings.hpp"

namespace condor::onnx {
namespace {

constexpr std::string_view kTag = "onnx-import";

Result<nn::Activation> activation_for_op(std::string_view op) {
  if (op == "Relu") {
    return nn::Activation::kReLU;
  }
  if (op == "Sigmoid") {
    return nn::Activation::kSigmoid;
  }
  if (op == "Tanh") {
    return nn::Activation::kTanH;
  }
  if (op == "LeakyRelu") {
    return nn::Activation::kLeakyReLU;
  }
  return invalid_input("not an activation op");
}

/// Reads an INTS attribute, or the fallback when absent.
std::vector<std::int64_t> ints_or(const NodeProto& node, std::string_view name,
                                  std::vector<std::int64_t> fallback) {
  const AttributeProto* attr = node.find_attribute(name);
  return attr != nullptr && !attr->ints.empty() ? attr->ints
                                                : std::move(fallback);
}

/// Validates symmetric pads [t, l, b, r] and returns the per-side amount.
Result<std::size_t> symmetric_pad(const NodeProto& node) {
  const auto pads = ints_or(node, "pads", {0, 0, 0, 0});
  if (pads.size() != 4) {
    return unsupported("node '" + node.name + "': pads must have 4 entries");
  }
  if (!(pads[0] == pads[1] && pads[1] == pads[2] && pads[2] == pads[3])) {
    return unsupported("node '" + node.name +
                       "': asymmetric padding is not supported");
  }
  return static_cast<std::size_t>(pads[0]);
}

Result<std::size_t> uniform_stride(const NodeProto& node) {
  const auto strides = ints_or(node, "strides", {1, 1});
  if (strides.size() != 2 || strides[0] != strides[1]) {
    return unsupported("node '" + node.name +
                       "': only uniform 2-D strides are supported");
  }
  return static_cast<std::size_t>(strides[0]);
}

Tensor tensor_from_proto(const TensorProto& proto, const Shape& shape) {
  return Tensor(shape, proto.values().value());
}

/// The NCHW scales of an opset-9 style Upsample node (second input, a
/// constant initializer).
Result<std::vector<float>> upsample_scales(const GraphProto& graph,
                                           const NodeProto& node,
                                           const std::string& node_name) {
  if (node.input.size() < 2) {
    return invalid_input("Upsample '" + node_name + "': missing scales input");
  }
  const TensorProto* scales = graph.find_initializer(node.input[1]);
  if (scales == nullptr) {
    return unsupported("Upsample '" + node_name +
                       "': scales must be a constant initializer");
  }
  return scales->values();
}

}  // namespace

Result<OnnxModel> import_model(const ModelProto& model) {
  const GraphProto& graph = model.graph;
  OnnxModel out;
  out.network.set_name(graph.name.empty() ? "onnx-net" : graph.name);

  // Graph input = the value-info entry that is not an initializer.
  const ValueInfoProto* graph_input = nullptr;
  for (const ValueInfoProto& info : graph.input) {
    if (graph.find_initializer(info.name) == nullptr) {
      if (graph_input != nullptr) {
        return unsupported("ONNX graph has multiple data inputs");
      }
      graph_input = &info;
    }
  }
  if (graph_input == nullptr) {
    return invalid_input("ONNX graph has no data input");
  }
  nn::LayerSpec input;
  input.kind = nn::LayerKind::kInput;
  input.name = graph_input->name;
  const auto& dims = graph_input->shape;
  if (dims.size() == 4) {
    input.input_channels = static_cast<std::size_t>(dims[1]);
    input.input_height = static_cast<std::size_t>(dims[2]);
    input.input_width = static_cast<std::size_t>(dims[3]);
  } else if (dims.size() == 3) {
    input.input_channels = static_cast<std::size_t>(dims[0]);
    input.input_height = static_cast<std::size_t>(dims[1]);
    input.input_width = static_cast<std::size_t>(dims[2]);
  } else {
    return unsupported(strings::format(
        "ONNX input '%s' must be rank 3 or 4, got rank %zu",
        graph_input->name.c_str(), dims.size()));
  }
  out.network.add(input);

  // ONNX value name -> the Condor layer whose output carries it. Aliases
  // (Flatten/Reshape, folded activations and batch norms) map several blob
  // names onto one layer. Nodes may consume any mapped blob, in any order
  // the (topologically sorted) graph presents — the single chain is gone.
  std::map<std::string, std::string> blob_layer;
  blob_layer[graph_input->name] = graph_input->name;

  // How many nodes read each blob. Fusing an activation or a batch norm
  // into its producer is only sound when that producer's raw output has no
  // other reader (a residual skip, say, must see the pre-fused value).
  std::map<std::string, std::size_t> uses;
  for (const NodeProto& node : graph.node) {
    for (const std::string& blob : node.input) {
      if (graph.find_initializer(blob) == nullptr) {
        ++uses[blob];
      }
    }
  }

  const auto resolve = [&](const std::string& blob) -> Result<std::string> {
    const auto it = blob_layer.find(blob);
    if (it == blob_layer.end()) {
      return invalid_input("ONNX value '" + blob +
                           "' is consumed before any node produces it");
    }
    return it->second;
  };

  // Registers `layer` with its producers resolved. The `inputs` list is
  // spelled out only when it differs from the implicit previous-layer
  // chain, keeping linear imports byte-identical to the legacy importer.
  const auto attach = [&](nn::LayerSpec layer,
                          std::vector<std::string> producers,
                          const std::string& out_blob) {
    const std::string& previous = out.network.layers().back().name;
    if (!(producers.size() == 1 && producers.front() == previous)) {
      layer.inputs = std::move(producers);
    }
    blob_layer[out_blob] = layer.name;
    out.network.add(std::move(layer));
  };

  // Pending MatMul awaiting a bias Add fold.
  std::string pending_matmul_layer;

  for (const NodeProto& node : graph.node) {
    const std::string& op = node.op_type;
    if (node.output.empty()) {
      return invalid_input("node '" + node.name + "' has no output");
    }
    if (node.input.empty()) {
      return unsupported("node '" + node.name + "' has no data input");
    }
    const std::string node_name =
        node.name.empty() ? node.output[0] : node.name;

    if (op == "Conv") {
      if (node.input.size() < 2) {
        return invalid_input("Conv '" + node_name + "' needs a weight input");
      }
      const TensorProto* weight = graph.find_initializer(node.input[1]);
      if (weight == nullptr || weight->dims.size() != 4) {
        return invalid_input("Conv '" + node_name +
                             "': weights must be a rank-4 initializer");
      }
      if (const AttributeProto* group = node.find_attribute("group");
          group != nullptr && group->i != 1) {
        return unsupported("Conv '" + node_name + "': grouped convolution");
      }
      CONDOR_ASSIGN_OR_RETURN(std::string producer, resolve(node.input[0]));
      nn::LayerSpec layer;
      layer.kind = nn::LayerKind::kConvolution;
      layer.name = node_name;
      layer.num_output = static_cast<std::size_t>(weight->dims[0]);
      const auto kernel = ints_or(node, "kernel_shape",
                                  {weight->dims[2], weight->dims[3]});
      layer.kernel_h = static_cast<std::size_t>(kernel[0]);
      layer.kernel_w = static_cast<std::size_t>(kernel.size() > 1 ? kernel[1]
                                                                  : kernel[0]);
      CONDOR_ASSIGN_OR_RETURN(layer.stride, uniform_stride(node));
      CONDOR_ASSIGN_OR_RETURN(layer.pad, symmetric_pad(node));
      layer.has_bias = node.input.size() > 2;

      nn::LayerParameters params;
      params.weights = tensor_from_proto(
          *weight, Shape{static_cast<std::size_t>(weight->dims[0]),
                         static_cast<std::size_t>(weight->dims[1]),
                         static_cast<std::size_t>(weight->dims[2]),
                         static_cast<std::size_t>(weight->dims[3])});
      if (layer.has_bias) {
        const TensorProto* bias = graph.find_initializer(node.input[2]);
        if (bias == nullptr) {
          return invalid_input("Conv '" + node_name + "': bias not found");
        }
        params.bias = tensor_from_proto(*bias, Shape{layer.num_output});
      }
      out.weights.set(layer.name, std::move(params));
      attach(std::move(layer), {std::move(producer)}, node.output[0]);
      continue;
    }

    if (op == "MaxPool" || op == "AveragePool") {
      CONDOR_ASSIGN_OR_RETURN(std::string producer, resolve(node.input[0]));
      nn::LayerSpec layer;
      layer.kind = nn::LayerKind::kPooling;
      layer.name = node_name;
      layer.pool_method =
          op == "MaxPool" ? nn::PoolMethod::kMax : nn::PoolMethod::kAverage;
      const auto kernel = ints_or(node, "kernel_shape", {});
      if (kernel.empty()) {
        return invalid_input(op + " '" + node_name + "': missing kernel_shape");
      }
      layer.kernel_h = static_cast<std::size_t>(kernel[0]);
      layer.kernel_w =
          static_cast<std::size_t>(kernel.size() > 1 ? kernel[1] : kernel[0]);
      CONDOR_ASSIGN_OR_RETURN(layer.stride, uniform_stride(node));
      CONDOR_ASSIGN_OR_RETURN(std::size_t pad, symmetric_pad(node));
      if (pad != 0) {
        return unsupported(op + " '" + node_name + "': padded pooling");
      }
      attach(std::move(layer), {std::move(producer)}, node.output[0]);
      continue;
    }

    if (op == "Gemm" || op == "MatMul") {
      if (node.input.size() < 2) {
        return invalid_input(op + " '" + node_name + "' needs a weight input");
      }
      const TensorProto* weight = graph.find_initializer(node.input[1]);
      if (weight == nullptr || weight->dims.size() != 2) {
        return invalid_input(op + " '" + node_name +
                             "': weights must be a rank-2 initializer");
      }
      bool trans_b = false;
      if (op == "Gemm") {
        if (const AttributeProto* attr = node.find_attribute("transB")) {
          trans_b = attr->i != 0;
        }
        if (const AttributeProto* attr = node.find_attribute("alpha");
            attr != nullptr && attr->f != 1.0F) {
          return unsupported("Gemm '" + node_name + "': alpha != 1");
        }
        if (const AttributeProto* attr = node.find_attribute("beta");
            attr != nullptr && attr->f != 1.0F) {
          return unsupported("Gemm '" + node_name + "': beta != 1");
        }
      }
      CONDOR_ASSIGN_OR_RETURN(std::string producer, resolve(node.input[0]));
      const auto rows = static_cast<std::size_t>(weight->dims[0]);
      const auto cols = static_cast<std::size_t>(weight->dims[1]);
      const std::size_t out_count = trans_b ? rows : cols;
      const std::size_t in_count = trans_b ? cols : rows;

      nn::LayerSpec layer;
      layer.kind = nn::LayerKind::kInnerProduct;
      layer.name = node_name;
      layer.num_output = out_count;
      layer.has_bias = op == "Gemm" && node.input.size() > 2;

      nn::LayerParameters params;
      CONDOR_ASSIGN_OR_RETURN(auto raw, weight->values());
      if (trans_b) {
        params.weights = Tensor(Shape{out_count, in_count}, std::move(raw));
      } else {
        // Stored [in, out]; Condor wants [out, in].
        Tensor transposed(Shape{out_count, in_count});
        for (std::size_t r = 0; r < in_count; ++r) {
          for (std::size_t c = 0; c < out_count; ++c) {
            transposed[c * in_count + r] = raw[r * out_count + c];
          }
        }
        params.weights = std::move(transposed);
      }
      if (layer.has_bias) {
        const TensorProto* bias = graph.find_initializer(node.input[2]);
        if (bias == nullptr) {
          return invalid_input("Gemm '" + node_name + "': bias not found");
        }
        params.bias = tensor_from_proto(*bias, Shape{out_count});
      }
      out.weights.set(layer.name, std::move(params));
      if (op == "MatMul") {
        pending_matmul_layer = node_name;
      }
      attach(std::move(layer), {std::move(producer)}, node.output[0]);
      continue;
    }

    if (op == "Add") {
      if (node.input.size() != 2) {
        return unsupported("Add '" + node_name + "': needs exactly 2 inputs");
      }
      const TensorProto* bias = graph.find_initializer(node.input[1]);
      if (bias != nullptr) {
        // Bias fold: MatMul output + initializer vector.
        CONDOR_ASSIGN_OR_RETURN(std::string producer, resolve(node.input[0]));
        if (pending_matmul_layer.empty() ||
            producer != pending_matmul_layer ||
            uses[node.input[0]] != 1) {
          return unsupported("Add '" + node_name + "': only bias folds after "
                             "MatMul are supported");
        }
        nn::LayerSpec& fc = out.network.layers().back();
        fc.has_bias = true;
        const nn::LayerParameters* existing = out.weights.find(fc.name);
        nn::LayerParameters params;
        params.weights = existing->weights;
        params.bias = tensor_from_proto(*bias, Shape{fc.num_output});
        out.weights.set(fc.name, std::move(params));
        pending_matmul_layer.clear();
        blob_layer[node.output[0]] = fc.name;
        continue;
      }
      // Two data operands: a residual join.
      CONDOR_ASSIGN_OR_RETURN(std::string lhs, resolve(node.input[0]));
      CONDOR_ASSIGN_OR_RETURN(std::string rhs, resolve(node.input[1]));
      nn::LayerSpec layer;
      layer.kind = nn::LayerKind::kEltwiseAdd;
      layer.name = node_name;
      attach(std::move(layer), {std::move(lhs), std::move(rhs)},
             node.output[0]);
      continue;
    }

    if (op == "Concat") {
      const AttributeProto* axis = node.find_attribute("axis");
      if (axis == nullptr || axis->i != 1) {
        return unsupported("Concat '" + node_name +
                           "': only channel (axis=1) concatenation is "
                           "supported");
      }
      if (node.input.size() != 2) {
        return unsupported("Concat '" + node_name +
                           "': exactly 2 inputs are supported");
      }
      CONDOR_ASSIGN_OR_RETURN(std::string lhs, resolve(node.input[0]));
      CONDOR_ASSIGN_OR_RETURN(std::string rhs, resolve(node.input[1]));
      nn::LayerSpec layer;
      layer.kind = nn::LayerKind::kConcat;
      layer.name = node_name;
      attach(std::move(layer), {std::move(lhs), std::move(rhs)},
             node.output[0]);
      continue;
    }

    if (op == "Upsample") {
      if (const AttributeProto* mode = node.find_attribute("mode");
          mode != nullptr && mode->s != "nearest") {
        return unsupported("Upsample '" + node_name + "': mode '" + mode->s +
                           "' (only nearest is supported)");
      }
      CONDOR_ASSIGN_OR_RETURN(const auto scales,
                              upsample_scales(graph, node, node_name));
      if (scales.size() != 4 || scales[0] != 1.0F || scales[1] != 1.0F ||
          scales[2] != scales[3] || scales[2] < 1.0F ||
          scales[2] != std::floor(scales[2])) {
        return unsupported("Upsample '" + node_name +
                           "': scales must be [1, 1, s, s] with integer s");
      }
      CONDOR_ASSIGN_OR_RETURN(std::string producer, resolve(node.input[0]));
      nn::LayerSpec layer;
      layer.kind = nn::LayerKind::kUpsample;
      layer.name = node_name;
      layer.stride = static_cast<std::size_t>(scales[2]);
      attach(std::move(layer), {std::move(producer)}, node.output[0]);
      continue;
    }

    if (op == "BatchNormalization") {
      if (node.input.size() < 5) {
        return invalid_input("BatchNormalization '" + node_name +
                             "': needs scale, bias, mean and variance inputs");
      }
      CONDOR_ASSIGN_OR_RETURN(std::string producer, resolve(node.input[0]));
      nn::LayerSpec& conv = out.network.layers().back();
      if (producer != conv.name ||
          conv.kind != nn::LayerKind::kConvolution ||
          conv.activation != nn::Activation::kNone ||
          uses[node.input[0]] != 1) {
        return unsupported("BatchNormalization '" + node_name +
                           "': only folds into an immediately preceding "
                           "single-consumer convolution are supported");
      }
      const TensorProto* gamma = graph.find_initializer(node.input[1]);
      const TensorProto* beta = graph.find_initializer(node.input[2]);
      const TensorProto* mean = graph.find_initializer(node.input[3]);
      const TensorProto* var = graph.find_initializer(node.input[4]);
      if (gamma == nullptr || beta == nullptr || mean == nullptr ||
          var == nullptr) {
        return invalid_input("BatchNormalization '" + node_name +
                             "': statistics must be constant initializers");
      }
      float epsilon = 1e-5F;
      if (const AttributeProto* attr = node.find_attribute("epsilon")) {
        epsilon = attr->f;
      }
      CONDOR_ASSIGN_OR_RETURN(const auto g, gamma->values());
      CONDOR_ASSIGN_OR_RETURN(const auto b, beta->values());
      CONDOR_ASSIGN_OR_RETURN(const auto mu, mean->values());
      CONDOR_ASSIGN_OR_RETURN(const auto v, var->values());
      const std::size_t channels = conv.num_output;
      if (g.size() != channels || b.size() != channels ||
          mu.size() != channels || v.size() != channels) {
        return invalid_input("BatchNormalization '" + node_name +
                             "': statistics do not match " +
                             std::to_string(channels) + " conv channels");
      }
      // w' = w * gamma / sqrt(var + eps); b' = (b - mean) * that + beta.
      const nn::LayerParameters* existing = out.weights.find(conv.name);
      nn::LayerParameters params;
      params.weights = existing->weights;
      params.bias = conv.has_bias ? existing->bias : Tensor(Shape{channels});
      const std::size_t per_channel = params.weights.size() / channels;
      for (std::size_t oc = 0; oc < channels; ++oc) {
        const float factor = g[oc] / std::sqrt(v[oc] + epsilon);
        for (std::size_t i = 0; i < per_channel; ++i) {
          params.weights[oc * per_channel + i] *= factor;
        }
        params.bias[oc] = (params.bias[oc] - mu[oc]) * factor + b[oc];
      }
      conv.has_bias = true;
      out.weights.set(conv.name, std::move(params));
      blob_layer[node.output[0]] = conv.name;
      CONDOR_LOG_DEBUG(kTag) << "folded BatchNormalization '" << node_name
                             << "' into '" << conv.name << "'";
      continue;
    }

    if (auto activation = activation_for_op(op); activation.is_ok()) {
      if (op == "LeakyRelu") {
        // ONNX defaults alpha to 0.01; Condor bakes the Darknet 0.1 slope
        // into its datapaths, so anything else cannot be represented.
        const AttributeProto* alpha = node.find_attribute("alpha");
        if (alpha == nullptr || alpha->f != nn::kLeakyReluSlope) {
          return unsupported(strings::format(
              "LeakyRelu '%s': alpha must be %g (got %g)", node_name.c_str(),
              static_cast<double>(nn::kLeakyReluSlope),
              alpha == nullptr ? 0.01 : static_cast<double>(alpha->f)));
        }
      }
      CONDOR_ASSIGN_OR_RETURN(std::string producer, resolve(node.input[0]));
      nn::LayerSpec* back = out.network.layers().size() > 1
                                ? &out.network.layers().back()
                                : nullptr;
      // Joins and upsamples apply activations inside their passes, so they
      // absorb a following activation just like the weighted layers do.
      const bool fusable =
          back != nullptr &&
          (back->has_weights() || back->is_join() ||
           back->kind == nn::LayerKind::kUpsample);
      if (fusable && back->name == producer &&
          back->activation == nn::Activation::kNone &&
          uses[node.input[0]] == 1) {
        back->activation = activation.value();
        blob_layer[node.output[0]] = back->name;
        CONDOR_LOG_DEBUG(kTag) << "fused " << op << " '" << node_name
                               << "' into '" << back->name << "'";
      } else {
        nn::LayerSpec layer;
        layer.kind = nn::LayerKind::kActivation;
        layer.name = node_name;
        layer.activation = activation.value();
        attach(std::move(layer), {std::move(producer)}, node.output[0]);
      }
      continue;
    }

    if (op == "Flatten" || op == "Reshape") {
      // Implicit in Condor's shape inference: alias the output blob to
      // whatever produced the input.
      CONDOR_ASSIGN_OR_RETURN(std::string producer, resolve(node.input[0]));
      blob_layer[node.output[0]] = std::move(producer);
      continue;
    }

    if (op == "Softmax") {
      CONDOR_ASSIGN_OR_RETURN(std::string producer, resolve(node.input[0]));
      nn::LayerSpec layer;
      layer.kind = nn::LayerKind::kSoftmax;
      layer.name = node_name;
      attach(std::move(layer), {std::move(producer)}, node.output[0]);
      continue;
    }

    return unsupported("ONNX op '" + op + "' (node '" + node_name +
                       "') is not supported by Condor");
  }

  CONDOR_RETURN_IF_ERROR(out.network.validate());
  CONDOR_RETURN_IF_ERROR(out.weights.validate_against(out.network));
  CONDOR_LOG_INFO(kTag) << "imported '" << out.network.name() << "' ("
                        << out.network.layer_count() << " layers, "
                        << out.network.join_count() << " joins)";
  return out;
}

Result<OnnxModel> load_onnx_model(std::span<const std::byte> data) {
  CONDOR_ASSIGN_OR_RETURN(ModelProto model, decode_model(data));
  return import_model(model);
}

}  // namespace condor::onnx

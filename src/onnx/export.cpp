#include "onnx/export.hpp"

#include <cstring>

namespace condor::onnx {
namespace {

TensorProto make_initializer(const std::string& name, const Tensor& tensor) {
  TensorProto proto;
  proto.name = name;
  for (const std::size_t dim : tensor.shape().dims()) {
    proto.dims.push_back(static_cast<std::int64_t>(dim));
  }
  proto.raw_data.resize(tensor.size() * sizeof(float));
  std::memcpy(proto.raw_data.data(), tensor.raw(), proto.raw_data.size());
  return proto;
}

AttributeProto ints_attr(std::string name, std::vector<std::int64_t> values) {
  AttributeProto attr;
  attr.name = std::move(name);
  attr.type = AttributeProto::Type::kInts;
  attr.ints = std::move(values);
  return attr;
}

AttributeProto int_attr(std::string name, std::int64_t value) {
  AttributeProto attr;
  attr.name = std::move(name);
  attr.type = AttributeProto::Type::kInt;
  attr.i = value;
  return attr;
}

AttributeProto float_attr(std::string name, float value) {
  AttributeProto attr;
  attr.name = std::move(name);
  attr.type = AttributeProto::Type::kFloat;
  attr.f = value;
  return attr;
}

AttributeProto string_attr(std::string name, std::string value) {
  AttributeProto attr;
  attr.name = std::move(name);
  attr.type = AttributeProto::Type::kString;
  attr.s = std::move(value);
  return attr;
}

const char* activation_op(nn::Activation activation) {
  switch (activation) {
    case nn::Activation::kReLU:
      return "Relu";
    case nn::Activation::kSigmoid:
      return "Sigmoid";
    case nn::Activation::kTanH:
      return "Tanh";
    case nn::Activation::kLeakyReLU:
      return "LeakyRelu";
    case nn::Activation::kNone:
      break;
  }
  return "";
}

}  // namespace

Result<ModelProto> to_model_proto(const nn::Network& network,
                                  const nn::WeightStore& weights) {
  CONDOR_RETURN_IF_ERROR(network.validate());
  CONDOR_RETURN_IF_ERROR(weights.validate_against(network));
  CONDOR_ASSIGN_OR_RETURN(auto shapes, network.infer_shapes());

  ModelProto model;
  model.producer_name = "condor";
  model.producer_version = "1.0";
  model.opset_import.push_back({"", 13});
  GraphProto& graph = model.graph;
  graph.name = network.name();

  const nn::LayerSpec& input = network.layers().front();
  graph.input.push_back(
      {input.name,
       {1, static_cast<std::int64_t>(input.input_channels),
        static_cast<std::int64_t>(input.input_height),
        static_cast<std::int64_t>(input.input_width)}});

  // ONNX value name carrying each layer's output (the fused-activation node
  // renames it); bottoms resolve through the DAG's producer edges.
  std::vector<std::string> blob_of(network.layer_count());
  blob_of[0] = input.name;
  const auto emit_activation = [&graph, &blob_of](const nn::LayerSpec& layer,
                                                  std::size_t index) {
    if (layer.activation == nn::Activation::kNone) {
      return;
    }
    NodeProto node;
    node.op_type = activation_op(layer.activation);
    node.name = layer.name + "_act";
    if (layer.activation == nn::Activation::kLeakyReLU) {
      node.attribute.push_back(float_attr("alpha", nn::kLeakyReluSlope));
    }
    node.input.push_back(blob_of[index]);
    node.output.push_back(node.name);
    blob_of[index] = node.name;
    graph.node.push_back(std::move(node));
  };

  bool flattened = false;
  for (std::size_t i = 1; i < network.layer_count(); ++i) {
    const nn::LayerSpec& layer = network.layers()[i];
    CONDOR_ASSIGN_OR_RETURN(const auto prods, network.producers(i));
    std::string current = blob_of[prods[0]];
    blob_of[i] = layer.name;
    switch (layer.kind) {
      case nn::LayerKind::kConvolution: {
        const nn::LayerParameters* params = weights.find(layer.name);
        NodeProto node;
        node.op_type = "Conv";
        node.name = layer.name;
        node.input = {current, layer.name + "_W"};
        graph.initializer.push_back(
            make_initializer(layer.name + "_W", params->weights));
        if (layer.has_bias) {
          node.input.push_back(layer.name + "_B");
          graph.initializer.push_back(
              make_initializer(layer.name + "_B", params->bias));
        }
        node.output.push_back(layer.name);
        node.attribute.push_back(
            ints_attr("kernel_shape",
                      {static_cast<std::int64_t>(layer.kernel_h),
                       static_cast<std::int64_t>(layer.kernel_w)}));
        node.attribute.push_back(ints_attr(
            "strides", {static_cast<std::int64_t>(layer.stride),
                        static_cast<std::int64_t>(layer.stride)}));
        node.attribute.push_back(
            ints_attr("pads", std::vector<std::int64_t>(
                                  4, static_cast<std::int64_t>(layer.pad))));
        node.attribute.push_back(int_attr("group", 1));
        graph.node.push_back(std::move(node));
        emit_activation(layer, i);
        break;
      }
      case nn::LayerKind::kPooling: {
        NodeProto node;
        node.op_type = layer.pool_method == nn::PoolMethod::kMax
                           ? "MaxPool"
                           : "AveragePool";
        node.name = layer.name;
        node.input.push_back(current);
        node.output.push_back(layer.name);
        node.attribute.push_back(
            ints_attr("kernel_shape",
                      {static_cast<std::int64_t>(layer.kernel_h),
                       static_cast<std::int64_t>(layer.kernel_w)}));
        node.attribute.push_back(ints_attr(
            "strides", {static_cast<std::int64_t>(layer.stride),
                        static_cast<std::int64_t>(layer.stride)}));
        graph.node.push_back(std::move(node));
        emit_activation(layer, i);
        break;
      }
      case nn::LayerKind::kInnerProduct: {
        if (!flattened && shapes[i].input.rank() > 1) {
          NodeProto flatten;
          flatten.op_type = "Flatten";
          flatten.name = layer.name + "_flatten";
          flatten.input.push_back(current);
          flatten.output.push_back(flatten.name);
          flatten.attribute.push_back(int_attr("axis", 1));
          current = flatten.name;
          graph.node.push_back(std::move(flatten));
          flattened = true;
        }
        const nn::LayerParameters* params = weights.find(layer.name);
        NodeProto node;
        node.op_type = "Gemm";
        node.name = layer.name;
        node.input = {current, layer.name + "_W"};
        graph.initializer.push_back(
            make_initializer(layer.name + "_W", params->weights));
        if (layer.has_bias) {
          node.input.push_back(layer.name + "_B");
          graph.initializer.push_back(
              make_initializer(layer.name + "_B", params->bias));
        }
        node.output.push_back(layer.name);
        node.attribute.push_back(int_attr("transB", 1));
        graph.node.push_back(std::move(node));
        emit_activation(layer, i);
        break;
      }
      case nn::LayerKind::kActivation: {
        NodeProto node;
        node.op_type = activation_op(layer.activation);
        node.name = layer.name;
        if (layer.activation == nn::Activation::kLeakyReLU) {
          node.attribute.push_back(float_attr("alpha", nn::kLeakyReluSlope));
        }
        node.input.push_back(current);
        node.output.push_back(layer.name);
        graph.node.push_back(std::move(node));
        break;
      }
      case nn::LayerKind::kSoftmax: {
        NodeProto node;
        node.op_type = "Softmax";
        node.name = layer.name;
        node.input.push_back(current);
        node.output.push_back(layer.name);
        node.attribute.push_back(int_attr("axis", 1));
        graph.node.push_back(std::move(node));
        break;
      }
      case nn::LayerKind::kEltwiseAdd: {
        NodeProto node;
        node.op_type = "Add";
        node.name = layer.name;
        node.input = {current, blob_of[prods[1]]};
        node.output.push_back(layer.name);
        graph.node.push_back(std::move(node));
        emit_activation(layer, i);
        break;
      }
      case nn::LayerKind::kConcat: {
        NodeProto node;
        node.op_type = "Concat";
        node.name = layer.name;
        node.input = {current, blob_of[prods[1]]};
        node.output.push_back(layer.name);
        node.attribute.push_back(int_attr("axis", 1));
        graph.node.push_back(std::move(node));
        emit_activation(layer, i);
        break;
      }
      case nn::LayerKind::kUpsample: {
        // Opset-9 style Upsample(X, scales) with nearest rounding; the
        // NCHW scales vector rides along as a float initializer.
        NodeProto node;
        node.op_type = "Upsample";
        node.name = layer.name;
        node.input = {current, layer.name + "_scales"};
        TensorProto scales;
        scales.name = layer.name + "_scales";
        scales.dims = {4};
        const auto scale = static_cast<float>(layer.stride);
        scales.float_data = {1.0F, 1.0F, scale, scale};
        graph.initializer.push_back(std::move(scales));
        node.output.push_back(layer.name);
        node.attribute.push_back(string_attr("mode", "nearest"));
        graph.node.push_back(std::move(node));
        emit_activation(layer, i);
        break;
      }
      case nn::LayerKind::kInput:
        return internal_error("unexpected input layer mid-network");
    }
  }

  ValueInfoProto output_info;
  output_info.name = blob_of.back();
  const Shape& out_shape = shapes.back().output;
  output_info.shape.push_back(1);
  for (const std::size_t dim : out_shape.dims()) {
    output_info.shape.push_back(static_cast<std::int64_t>(dim));
  }
  graph.output.push_back(std::move(output_info));
  return model;
}

Result<std::vector<std::byte>> to_onnx(const nn::Network& network,
                                       const nn::WeightStore& weights) {
  CONDOR_ASSIGN_OR_RETURN(ModelProto model, to_model_proto(network, weights));
  return encode_model(model);
}

}  // namespace condor::onnx

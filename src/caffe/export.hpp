// Condor → Caffe export.
//
// Primarily used to synthesize test fixtures: the reproduction has no
// pre-trained `.caffemodel` files, so examples and tests generate them from
// the model zoo (topology → prototxt text, weights → caffemodel bytes) and
// then exercise the real import path, exactly as a user with a Caffe
// checkpoint would. Round-tripping through export/import is also a strong
// property test for both codecs.
#pragma once

#include "caffe/caffe_pb.hpp"
#include "common/status.hpp"
#include "nn/network.hpp"
#include "nn/weights.hpp"

namespace condor::caffe {

/// Emits a Caffe deploy-style prototxt for the network. Fused activations
/// are exported as separate in-place layers (ReLU/Sigmoid/TanH), matching
/// how Caffe models express them.
Result<std::string> to_prototxt(const nn::Network& network);

/// Builds a NetParameter carrying topology and weight blobs.
Result<NetParameter> to_net_parameter(const nn::Network& network,
                                      const nn::WeightStore& weights);

/// Serializes network + weights to `.caffemodel` wire bytes.
Result<std::vector<std::byte>> to_caffemodel(const nn::Network& network,
                                             const nn::WeightStore& weights);

/// Writes both files for a model ("<stem>.prototxt", "<stem>.caffemodel").
Status write_caffe_fixture(const nn::Network& network,
                           const nn::WeightStore& weights,
                           const std::string& path_stem);

}  // namespace condor::caffe

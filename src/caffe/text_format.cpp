#include "caffe/text_format.hpp"

#include <cstdlib>

#include "common/strings.hpp"

namespace condor::caffe {

const std::string* TextMessage::scalar(std::string_view name) const noexcept {
  for (const TextField& field : fields_) {
    if (field.name == name && !field.is_message()) {
      return &field.scalar;
    }
  }
  return nullptr;
}

std::vector<std::string_view> TextMessage::scalars(std::string_view name) const {
  std::vector<std::string_view> out;
  for (const TextField& field : fields_) {
    if (field.name == name && !field.is_message()) {
      out.push_back(field.scalar);
    }
  }
  return out;
}

const TextMessage* TextMessage::message(std::string_view name) const noexcept {
  for (const TextField& field : fields_) {
    if (field.name == name && field.is_message()) {
      return field.message.get();
    }
  }
  return nullptr;
}

std::vector<const TextMessage*> TextMessage::messages(std::string_view name) const {
  std::vector<const TextMessage*> out;
  for (const TextField& field : fields_) {
    if (field.name == name && field.is_message()) {
      out.push_back(field.message.get());
    }
  }
  return out;
}

bool TextMessage::has(std::string_view name) const noexcept {
  for (const TextField& field : fields_) {
    if (field.name == name) {
      return true;
    }
  }
  return false;
}

Result<std::int64_t> TextMessage::get_int(std::string_view name) const {
  const std::string* token = scalar(name);
  if (token == nullptr) {
    return not_found("missing field '" + std::string(name) + "'");
  }
  char* end = nullptr;
  const long long value = std::strtoll(token->c_str(), &end, 10);
  if (end != token->c_str() + token->size() || token->empty()) {
    return invalid_input("field '" + std::string(name) + "' is not an integer: '" +
                         *token + "'");
  }
  return static_cast<std::int64_t>(value);
}

std::int64_t TextMessage::get_int_or(std::string_view name,
                                     std::int64_t fallback) const {
  auto result = get_int(name);
  return result.is_ok() ? result.value() : fallback;
}

Result<double> TextMessage::get_double(std::string_view name) const {
  const std::string* token = scalar(name);
  if (token == nullptr) {
    return not_found("missing field '" + std::string(name) + "'");
  }
  char* end = nullptr;
  const double value = std::strtod(token->c_str(), &end);
  if (end != token->c_str() + token->size() || token->empty()) {
    return invalid_input("field '" + std::string(name) + "' is not a number: '" +
                         *token + "'");
  }
  return value;
}

Result<std::string> TextMessage::get_string(std::string_view name) const {
  const std::string* token = scalar(name);
  if (token == nullptr) {
    return not_found("missing field '" + std::string(name) + "'");
  }
  return *token;
}

bool TextMessage::get_bool_or(std::string_view name, bool fallback) const {
  const std::string* token = scalar(name);
  if (token == nullptr) {
    return fallback;
  }
  return *token == "true" || *token == "1";
}

void TextMessage::add_scalar(std::string name, std::string value) {
  TextField field;
  field.name = std::move(name);
  field.scalar = std::move(value);
  fields_.push_back(std::move(field));
}

TextMessage& TextMessage::add_message(std::string name) {
  TextField field;
  field.name = std::move(name);
  field.message = std::make_unique<TextMessage>();
  fields_.push_back(std::move(field));
  return *fields_.back().message;
}

namespace {

class TextParser {
 public:
  explicit TextParser(std::string_view text) : text_(text) {}

  Result<TextMessage> run() {
    TextMessage root;
    CONDOR_RETURN_IF_ERROR(parse_fields(root, /*top_level=*/true));
    return root;
  }

 private:
  Status error(const std::string& what) const {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
      }
    }
    return invalid_input(
        strings::format("prototxt parse error at line %zu: %s", line, what.c_str()));
  }

  void skip_whitespace_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ',') {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') {
          ++pos_;
        }
      } else {
        break;
      }
    }
  }

  [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  static bool is_ident_char(char c) noexcept {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
  }

  static bool is_scalar_char(char c) noexcept {
    return is_ident_char(c) || c == '.' || c == '-' || c == '+';
  }

  Result<std::string> parse_identifier() {
    const std::size_t start = pos_;
    while (!eof() && is_ident_char(peek())) {
      ++pos_;
    }
    if (pos_ == start) {
      return error("expected identifier");
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<std::string> parse_quoted_string() {
    ++pos_;  // opening quote
    std::string out;
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c == '\\' && !eof()) {
        const char escape = text_[pos_++];
        switch (escape) {
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          default:
            out.push_back(escape);
        }
      } else {
        out.push_back(c);
      }
    }
    return error("unterminated string literal");
  }

  static constexpr int kMaxDepth = 192;

  Status parse_fields(TextMessage& into, bool top_level) {
    if (++depth_ > kMaxDepth) {
      --depth_;
      return error("message nesting deeper than the parser limit");
    }
    struct DepthGuard {
      int& depth;
      ~DepthGuard() { --depth; }
    } guard{depth_};
    for (;;) {
      skip_whitespace_and_comments();
      if (eof()) {
        if (!top_level) {
          return error("unexpected end of input inside message");
        }
        return Status::ok();
      }
      if (peek() == '}') {
        if (top_level) {
          return error("unmatched '}'");
        }
        ++pos_;
        return Status::ok();
      }
      CONDOR_ASSIGN_OR_RETURN(std::string name, parse_identifier());
      skip_whitespace_and_comments();
      bool saw_colon = false;
      if (!eof() && peek() == ':') {
        ++pos_;
        saw_colon = true;
        skip_whitespace_and_comments();
      }
      if (eof()) {
        return error("field '" + name + "' has no value");
      }
      if (peek() == '{') {
        ++pos_;
        TextMessage& nested = into.add_message(std::move(name));
        CONDOR_RETURN_IF_ERROR(parse_fields(nested, /*top_level=*/false));
        continue;
      }
      if (!saw_colon) {
        return error("expected ':' or '{' after field '" + name + "'");
      }
      if (peek() == '"') {
        CONDOR_ASSIGN_OR_RETURN(std::string value, parse_quoted_string());
        into.add_scalar(std::move(name), std::move(value));
        continue;
      }
      const std::size_t start = pos_;
      while (!eof() && is_scalar_char(peek())) {
        ++pos_;
      }
      if (pos_ == start) {
        return error("invalid scalar value for field '" + name + "'");
      }
      into.add_scalar(std::move(name),
                      std::string(text_.substr(start, pos_ - start)));
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<TextMessage> parse_text_format(std::string_view text) {
  return TextParser(text).run();
}

}  // namespace condor::caffe

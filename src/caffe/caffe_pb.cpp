#include "caffe/caffe_pb.hpp"

namespace condor::caffe {

using protowire::Reader;
using protowire::Tag;
using protowire::WireType;
using protowire::Writer;

std::vector<std::int64_t> BlobProto::resolved_shape() const {
  if (shape.has_value()) {
    return shape->dim;
  }
  std::vector<std::int64_t> legacy;
  for (const auto& field : {num, channels, height, width}) {
    if (field.has_value()) {
      legacy.push_back(*field);
    }
  }
  return legacy;
}

namespace {

// ---- encoders ----------------------------------------------------------

Writer encode_blob_shape(const BlobShape& shape) {
  Writer out;
  // Packed repeated int64 (field 1).
  ByteWriter payload;
  for (const std::int64_t dim : shape.dim) {
    protowire::put_varint(payload, static_cast<std::uint64_t>(dim));
  }
  out.bytes_field(1, payload.view());
  return out;
}

Writer encode_blob(const BlobProto& blob) {
  Writer out;
  if (blob.num) out.int_field(1, *blob.num);
  if (blob.channels) out.int_field(2, *blob.channels);
  if (blob.height) out.int_field(3, *blob.height);
  if (blob.width) out.int_field(4, *blob.width);
  out.packed_floats(5, blob.data);
  if (blob.shape) {
    out.message_field(7, encode_blob_shape(*blob.shape));
  }
  return out;
}

Writer encode_convolution_param(const ConvolutionParameter& param) {
  Writer out;
  out.varint_field(1, param.num_output);
  out.bool_field(2, param.bias_term);
  for (const std::uint32_t value : param.pad) out.varint_field(3, value);
  for (const std::uint32_t value : param.kernel_size) out.varint_field(4, value);
  for (const std::uint32_t value : param.stride) out.varint_field(6, value);
  if (param.kernel_h) out.varint_field(11, *param.kernel_h);
  if (param.kernel_w) out.varint_field(12, *param.kernel_w);
  if (param.stride_h) out.varint_field(13, *param.stride_h);
  if (param.stride_w) out.varint_field(14, *param.stride_w);
  return out;
}

Writer encode_pooling_param(const PoolingParameter& param) {
  Writer out;
  out.varint_field(1, static_cast<std::uint64_t>(param.pool));
  out.varint_field(2, param.kernel_size);
  out.varint_field(3, param.stride);
  if (param.pad != 0) out.varint_field(4, param.pad);
  return out;
}

Writer encode_inner_product_param(const InnerProductParameter& param) {
  Writer out;
  out.varint_field(1, param.num_output);
  out.bool_field(2, param.bias_term);
  return out;
}

Writer encode_eltwise_param(const EltwiseParameter& param) {
  Writer out;
  out.varint_field(1, static_cast<std::uint64_t>(param.operation));
  return out;
}

Writer encode_concat_param(const ConcatParameter& param) {
  Writer out;
  out.int_field(2, param.axis);
  return out;
}

Writer encode_relu_param(const ReLUParameter& param) {
  Writer out;
  out.float_field(1, param.negative_slope);
  return out;
}

Writer encode_input_param(const InputParameter& param) {
  Writer out;
  for (const BlobShape& shape : param.shape) {
    out.message_field(1, encode_blob_shape(shape));
  }
  return out;
}

Writer encode_layer(const LayerParameter& layer) {
  Writer out;
  out.string_field(1, layer.name);
  out.string_field(2, layer.type);
  for (const std::string& name : layer.bottom) out.string_field(3, name);
  for (const std::string& name : layer.top) out.string_field(4, name);
  for (const BlobProto& blob : layer.blobs) {
    out.message_field(7, encode_blob(blob));
  }
  if (layer.concat_param) {
    out.message_field(104, encode_concat_param(*layer.concat_param));
  }
  if (layer.convolution_param) {
    out.message_field(106, encode_convolution_param(*layer.convolution_param));
  }
  if (layer.eltwise_param) {
    out.message_field(110, encode_eltwise_param(*layer.eltwise_param));
  }
  if (layer.inner_product_param) {
    out.message_field(117, encode_inner_product_param(*layer.inner_product_param));
  }
  if (layer.pooling_param) {
    out.message_field(121, encode_pooling_param(*layer.pooling_param));
  }
  if (layer.relu_param) {
    out.message_field(123, encode_relu_param(*layer.relu_param));
  }
  if (layer.input_param) {
    out.message_field(143, encode_input_param(*layer.input_param));
  }
  return out;
}

// ---- decoders ----------------------------------------------------------

Result<BlobShape> decode_blob_shape(std::span<const std::byte> data) {
  BlobShape shape;
  Reader in(data);
  while (!in.at_end()) {
    CONDOR_ASSIGN_OR_RETURN(Tag tag, in.read_tag());
    if (tag.field_number == 1 && tag.wire_type == WireType::kLen) {
      CONDOR_ASSIGN_OR_RETURN(auto payload, in.read_len());
      ByteReader values(payload);
      while (!values.at_end()) {
        CONDOR_ASSIGN_OR_RETURN(std::uint64_t dim, protowire::get_varint(values));
        shape.dim.push_back(static_cast<std::int64_t>(dim));
      }
    } else if (tag.field_number == 1 && tag.wire_type == WireType::kVarint) {
      CONDOR_ASSIGN_OR_RETURN(std::uint64_t dim, in.read_varint());
      shape.dim.push_back(static_cast<std::int64_t>(dim));
    } else {
      CONDOR_RETURN_IF_ERROR(in.skip(tag));
    }
  }
  return shape;
}

Result<BlobProto> decode_blob(std::span<const std::byte> data) {
  BlobProto blob;
  Reader in(data);
  while (!in.at_end()) {
    CONDOR_ASSIGN_OR_RETURN(Tag tag, in.read_tag());
    switch (tag.field_number) {
      case 1:
      case 2:
      case 3:
      case 4: {
        CONDOR_ASSIGN_OR_RETURN(std::uint64_t value, in.read_varint());
        const auto dim = static_cast<std::int32_t>(value);
        if (tag.field_number == 1) blob.num = dim;
        if (tag.field_number == 2) blob.channels = dim;
        if (tag.field_number == 3) blob.height = dim;
        if (tag.field_number == 4) blob.width = dim;
        break;
      }
      case 5:
        CONDOR_RETURN_IF_ERROR(in.read_packed_floats(tag, blob.data));
        break;
      case 7: {
        CONDOR_ASSIGN_OR_RETURN(auto payload, in.read_len());
        CONDOR_ASSIGN_OR_RETURN(blob.shape, decode_blob_shape(payload));
        break;
      }
      default:
        CONDOR_RETURN_IF_ERROR(in.skip(tag));
    }
  }
  return blob;
}

Result<ConvolutionParameter> decode_convolution_param(
    std::span<const std::byte> data) {
  ConvolutionParameter param;
  Reader in(data);
  while (!in.at_end()) {
    CONDOR_ASSIGN_OR_RETURN(Tag tag, in.read_tag());
    switch (tag.field_number) {
      case 1: {
        CONDOR_ASSIGN_OR_RETURN(std::uint64_t value, in.read_varint());
        param.num_output = static_cast<std::uint32_t>(value);
        break;
      }
      case 2: {
        CONDOR_ASSIGN_OR_RETURN(std::uint64_t value, in.read_varint());
        param.bias_term = value != 0;
        break;
      }
      case 3:
      case 4:
      case 6: {
        CONDOR_ASSIGN_OR_RETURN(std::uint64_t value, in.read_varint());
        auto& list = tag.field_number == 3   ? param.pad
                     : tag.field_number == 4 ? param.kernel_size
                                             : param.stride;
        list.push_back(static_cast<std::uint32_t>(value));
        break;
      }
      case 11:
      case 12:
      case 13:
      case 14: {
        CONDOR_ASSIGN_OR_RETURN(std::uint64_t value, in.read_varint());
        const auto v = static_cast<std::uint32_t>(value);
        if (tag.field_number == 11) param.kernel_h = v;
        if (tag.field_number == 12) param.kernel_w = v;
        if (tag.field_number == 13) param.stride_h = v;
        if (tag.field_number == 14) param.stride_w = v;
        break;
      }
      default:
        CONDOR_RETURN_IF_ERROR(in.skip(tag));
    }
  }
  return param;
}

Result<PoolingParameter> decode_pooling_param(std::span<const std::byte> data) {
  PoolingParameter param;
  Reader in(data);
  while (!in.at_end()) {
    CONDOR_ASSIGN_OR_RETURN(Tag tag, in.read_tag());
    switch (tag.field_number) {
      case 1: {
        CONDOR_ASSIGN_OR_RETURN(std::uint64_t value, in.read_varint());
        param.pool = static_cast<PoolingParameter::Method>(value);
        break;
      }
      case 2: {
        CONDOR_ASSIGN_OR_RETURN(std::uint64_t value, in.read_varint());
        param.kernel_size = static_cast<std::uint32_t>(value);
        break;
      }
      case 3: {
        CONDOR_ASSIGN_OR_RETURN(std::uint64_t value, in.read_varint());
        param.stride = static_cast<std::uint32_t>(value);
        break;
      }
      case 4: {
        CONDOR_ASSIGN_OR_RETURN(std::uint64_t value, in.read_varint());
        param.pad = static_cast<std::uint32_t>(value);
        break;
      }
      default:
        CONDOR_RETURN_IF_ERROR(in.skip(tag));
    }
  }
  return param;
}

Result<InnerProductParameter> decode_inner_product_param(
    std::span<const std::byte> data) {
  InnerProductParameter param;
  Reader in(data);
  while (!in.at_end()) {
    CONDOR_ASSIGN_OR_RETURN(Tag tag, in.read_tag());
    switch (tag.field_number) {
      case 1: {
        CONDOR_ASSIGN_OR_RETURN(std::uint64_t value, in.read_varint());
        param.num_output = static_cast<std::uint32_t>(value);
        break;
      }
      case 2: {
        CONDOR_ASSIGN_OR_RETURN(std::uint64_t value, in.read_varint());
        param.bias_term = value != 0;
        break;
      }
      default:
        CONDOR_RETURN_IF_ERROR(in.skip(tag));
    }
  }
  return param;
}

Result<EltwiseParameter> decode_eltwise_param(std::span<const std::byte> data) {
  EltwiseParameter param;
  Reader in(data);
  while (!in.at_end()) {
    CONDOR_ASSIGN_OR_RETURN(Tag tag, in.read_tag());
    if (tag.field_number == 1 && tag.wire_type == WireType::kVarint) {
      CONDOR_ASSIGN_OR_RETURN(std::uint64_t value, in.read_varint());
      param.operation = static_cast<EltwiseParameter::Operation>(value);
    } else {
      CONDOR_RETURN_IF_ERROR(in.skip(tag));
    }
  }
  return param;
}

Result<ConcatParameter> decode_concat_param(std::span<const std::byte> data) {
  ConcatParameter param;
  Reader in(data);
  while (!in.at_end()) {
    CONDOR_ASSIGN_OR_RETURN(Tag tag, in.read_tag());
    if (tag.field_number == 2 && tag.wire_type == WireType::kVarint) {
      CONDOR_ASSIGN_OR_RETURN(std::uint64_t value, in.read_varint());
      param.axis = static_cast<std::int32_t>(value);
    } else {
      CONDOR_RETURN_IF_ERROR(in.skip(tag));
    }
  }
  return param;
}

Result<ReLUParameter> decode_relu_param(std::span<const std::byte> data) {
  ReLUParameter param;
  Reader in(data);
  while (!in.at_end()) {
    CONDOR_ASSIGN_OR_RETURN(Tag tag, in.read_tag());
    if (tag.field_number == 1 && tag.wire_type == WireType::kI32) {
      CONDOR_ASSIGN_OR_RETURN(param.negative_slope, in.read_float());
    } else {
      CONDOR_RETURN_IF_ERROR(in.skip(tag));
    }
  }
  return param;
}

Result<InputParameter> decode_input_param(std::span<const std::byte> data) {
  InputParameter param;
  Reader in(data);
  while (!in.at_end()) {
    CONDOR_ASSIGN_OR_RETURN(Tag tag, in.read_tag());
    if (tag.field_number == 1 && tag.wire_type == WireType::kLen) {
      CONDOR_ASSIGN_OR_RETURN(auto payload, in.read_len());
      CONDOR_ASSIGN_OR_RETURN(BlobShape shape, decode_blob_shape(payload));
      param.shape.push_back(std::move(shape));
    } else {
      CONDOR_RETURN_IF_ERROR(in.skip(tag));
    }
  }
  return param;
}

Result<LayerParameter> decode_layer(std::span<const std::byte> data) {
  LayerParameter layer;
  Reader in(data);
  while (!in.at_end()) {
    CONDOR_ASSIGN_OR_RETURN(Tag tag, in.read_tag());
    switch (tag.field_number) {
      case 1: {
        CONDOR_ASSIGN_OR_RETURN(layer.name, in.read_string());
        break;
      }
      case 2: {
        CONDOR_ASSIGN_OR_RETURN(layer.type, in.read_string());
        break;
      }
      case 3: {
        CONDOR_ASSIGN_OR_RETURN(std::string name, in.read_string());
        layer.bottom.push_back(std::move(name));
        break;
      }
      case 4: {
        CONDOR_ASSIGN_OR_RETURN(std::string name, in.read_string());
        layer.top.push_back(std::move(name));
        break;
      }
      case 7: {
        CONDOR_ASSIGN_OR_RETURN(auto payload, in.read_len());
        CONDOR_ASSIGN_OR_RETURN(BlobProto blob, decode_blob(payload));
        layer.blobs.push_back(std::move(blob));
        break;
      }
      case 104: {
        CONDOR_ASSIGN_OR_RETURN(auto payload, in.read_len());
        CONDOR_ASSIGN_OR_RETURN(layer.concat_param, decode_concat_param(payload));
        break;
      }
      case 106: {
        CONDOR_ASSIGN_OR_RETURN(auto payload, in.read_len());
        CONDOR_ASSIGN_OR_RETURN(layer.convolution_param,
                                decode_convolution_param(payload));
        break;
      }
      case 110: {
        CONDOR_ASSIGN_OR_RETURN(auto payload, in.read_len());
        CONDOR_ASSIGN_OR_RETURN(layer.eltwise_param,
                                decode_eltwise_param(payload));
        break;
      }
      case 117: {
        CONDOR_ASSIGN_OR_RETURN(auto payload, in.read_len());
        CONDOR_ASSIGN_OR_RETURN(layer.inner_product_param,
                                decode_inner_product_param(payload));
        break;
      }
      case 121: {
        CONDOR_ASSIGN_OR_RETURN(auto payload, in.read_len());
        CONDOR_ASSIGN_OR_RETURN(layer.pooling_param, decode_pooling_param(payload));
        break;
      }
      case 123: {
        CONDOR_ASSIGN_OR_RETURN(auto payload, in.read_len());
        CONDOR_ASSIGN_OR_RETURN(layer.relu_param, decode_relu_param(payload));
        break;
      }
      case 143: {
        CONDOR_ASSIGN_OR_RETURN(auto payload, in.read_len());
        CONDOR_ASSIGN_OR_RETURN(layer.input_param, decode_input_param(payload));
        break;
      }
      default:
        CONDOR_RETURN_IF_ERROR(in.skip(tag));
    }
  }
  return layer;
}

}  // namespace

std::vector<std::byte> encode_net_parameter(const NetParameter& net) {
  Writer out;
  if (!net.name.empty()) {
    out.string_field(1, net.name);
  }
  for (const std::string& name : net.input) out.string_field(3, name);
  for (const std::int32_t dim : net.input_dim) out.int_field(4, dim);
  for (const BlobShape& shape : net.input_shape) {
    out.message_field(8, encode_blob_shape(shape));
  }
  for (const LayerParameter& layer : net.layer) {
    out.message_field(100, encode_layer(layer));
  }
  return std::move(out).take();
}

Result<NetParameter> decode_net_parameter(std::span<const std::byte> data) {
  NetParameter net;
  Reader in(data);
  while (!in.at_end()) {
    CONDOR_ASSIGN_OR_RETURN(Tag tag, in.read_tag());
    switch (tag.field_number) {
      case 1: {
        CONDOR_ASSIGN_OR_RETURN(net.name, in.read_string());
        break;
      }
      case 3: {
        CONDOR_ASSIGN_OR_RETURN(std::string name, in.read_string());
        net.input.push_back(std::move(name));
        break;
      }
      case 4: {
        CONDOR_ASSIGN_OR_RETURN(std::uint64_t value, in.read_varint());
        net.input_dim.push_back(static_cast<std::int32_t>(value));
        break;
      }
      case 8: {
        CONDOR_ASSIGN_OR_RETURN(auto payload, in.read_len());
        CONDOR_ASSIGN_OR_RETURN(BlobShape shape, decode_blob_shape(payload));
        net.input_shape.push_back(std::move(shape));
        break;
      }
      case 100: {
        CONDOR_ASSIGN_OR_RETURN(auto payload, in.read_len());
        CONDOR_ASSIGN_OR_RETURN(LayerParameter layer, decode_layer(payload));
        net.layer.push_back(std::move(layer));
        break;
      }
      default:
        CONDOR_RETURN_IF_ERROR(in.skip(tag));
    }
  }
  return net;
}

}  // namespace condor::caffe

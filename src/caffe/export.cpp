#include "caffe/export.hpp"

#include "common/byte_io.hpp"
#include "common/strings.hpp"

namespace condor::caffe {
namespace {

std::string caffe_activation_type(nn::Activation activation) {
  switch (activation) {
    case nn::Activation::kReLU:
    case nn::Activation::kLeakyReLU:  // ReLU with a negative_slope param
      return "ReLU";
    case nn::Activation::kSigmoid:
      return "Sigmoid";
    case nn::Activation::kTanH:
      return "TanH";
    case nn::Activation::kNone:
      break;
  }
  return "";
}

/// The relu_param line for a leaky ReLU, empty otherwise (prototxt form).
std::string relu_param_text(nn::Activation activation) {
  if (activation != nn::Activation::kLeakyReLU) {
    return "";
  }
  return strings::format("  relu_param { negative_slope: %g }\n",
                         static_cast<double>(nn::kLeakyReluSlope));
}

}  // namespace

Result<std::string> to_prototxt(const nn::Network& network) {
  CONDOR_RETURN_IF_ERROR(network.validate());
  const auto& layers = network.layers();
  std::string out = "name: \"" + network.name() + "\"\n";
  // Blob name each layer's output goes by. In-place activation layers alias
  // their producer's blob, every other layer tops its own name; bottoms are
  // resolved through the DAG's producer edges.
  std::vector<std::string> top_of(layers.size());
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const nn::LayerSpec& layer = layers[i];
    CONDOR_ASSIGN_OR_RETURN(const auto prods, network.producers(i));
    top_of[i] = layer.name;
    const std::string bottom = prods.empty() ? "" : top_of[prods[0]];
    switch (layer.kind) {
      case nn::LayerKind::kInput: {
        out += "layer {\n";
        out += "  name: \"" + layer.name + "\"\n";
        out += "  type: \"Input\"\n";
        out += "  top: \"" + layer.name + "\"\n";
        out += strings::format(
            "  input_param { shape { dim: 1 dim: %zu dim: %zu dim: %zu } }\n",
            layer.input_channels, layer.input_height, layer.input_width);
        out += "}\n";
        continue;
      }
      case nn::LayerKind::kConvolution: {
        out += "layer {\n";
        out += "  name: \"" + layer.name + "\"\n";
        out += "  type: \"Convolution\"\n";
        out += "  bottom: \"" + bottom + "\"\n";
        out += "  top: \"" + layer.name + "\"\n";
        out += "  convolution_param {\n";
        out += strings::format("    num_output: %zu\n", layer.num_output);
        if (layer.kernel_h == layer.kernel_w) {
          out += strings::format("    kernel_size: %zu\n", layer.kernel_h);
        } else {
          out += strings::format("    kernel_h: %zu\n    kernel_w: %zu\n",
                                 layer.kernel_h, layer.kernel_w);
        }
        out += strings::format("    stride: %zu\n", layer.stride);
        if (layer.pad != 0) {
          out += strings::format("    pad: %zu\n", layer.pad);
        }
        if (!layer.has_bias) {
          out += "    bias_term: false\n";
        }
        out += "  }\n";
        out += "}\n";
        break;
      }
      case nn::LayerKind::kPooling: {
        out += "layer {\n";
        out += "  name: \"" + layer.name + "\"\n";
        out += "  type: \"Pooling\"\n";
        out += "  bottom: \"" + bottom + "\"\n";
        out += "  top: \"" + layer.name + "\"\n";
        out += "  pooling_param {\n";
        out += strings::format(
            "    pool: %s\n",
            layer.pool_method == nn::PoolMethod::kMax ? "MAX" : "AVE");
        out += strings::format("    kernel_size: %zu\n", layer.kernel_h);
        out += strings::format("    stride: %zu\n", layer.stride);
        out += "  }\n";
        out += "}\n";
        break;
      }
      case nn::LayerKind::kInnerProduct: {
        out += "layer {\n";
        out += "  name: \"" + layer.name + "\"\n";
        out += "  type: \"InnerProduct\"\n";
        out += "  bottom: \"" + bottom + "\"\n";
        out += "  top: \"" + layer.name + "\"\n";
        out += "  inner_product_param {\n";
        out += strings::format("    num_output: %zu\n", layer.num_output);
        if (!layer.has_bias) {
          out += "    bias_term: false\n";
        }
        out += "  }\n";
        out += "}\n";
        break;
      }
      case nn::LayerKind::kActivation: {
        out += "layer {\n";
        out += "  name: \"" + layer.name + "\"\n";
        out += "  type: \"" + caffe_activation_type(layer.activation) + "\"\n";
        out += relu_param_text(layer.activation);
        out += "  bottom: \"" + bottom + "\"\n";
        out += "  top: \"" + bottom + "\"\n";  // in-place
        out += "}\n";
        top_of[i] = bottom;
        break;
      }
      case nn::LayerKind::kSoftmax: {
        out += "layer {\n";
        out += "  name: \"" + layer.name + "\"\n";
        out += "  type: \"Softmax\"\n";
        out += "  bottom: \"" + bottom + "\"\n";
        out += "  top: \"" + layer.name + "\"\n";
        out += "}\n";
        break;
      }
      case nn::LayerKind::kEltwiseAdd: {
        out += "layer {\n";
        out += "  name: \"" + layer.name + "\"\n";
        out += "  type: \"Eltwise\"\n";
        out += "  bottom: \"" + bottom + "\"\n";
        out += "  bottom: \"" + top_of[prods[1]] + "\"\n";
        out += "  top: \"" + layer.name + "\"\n";
        out += "  eltwise_param { operation: SUM }\n";
        out += "}\n";
        break;
      }
      case nn::LayerKind::kConcat: {
        out += "layer {\n";
        out += "  name: \"" + layer.name + "\"\n";
        out += "  type: \"Concat\"\n";
        out += "  bottom: \"" + bottom + "\"\n";
        out += "  bottom: \"" + top_of[prods[1]] + "\"\n";
        out += "  top: \"" + layer.name + "\"\n";
        out += "}\n";
        break;
      }
      case nn::LayerKind::kUpsample: {
        out += "layer {\n";
        out += "  name: \"" + layer.name + "\"\n";
        out += "  type: \"Upsample\"\n";
        out += "  bottom: \"" + bottom + "\"\n";
        out += "  top: \"" + layer.name + "\"\n";
        out += strings::format("  upsample_param { scale: %zu }\n", layer.stride);
        out += "}\n";
        break;
      }
    }
    // Fused activations exported as separate in-place Caffe layers.
    if (layer.kind != nn::LayerKind::kActivation &&
        layer.activation != nn::Activation::kNone) {
      out += "layer {\n";
      out += "  name: \"" + layer.name + "_act\"\n";
      out += "  type: \"" + caffe_activation_type(layer.activation) + "\"\n";
      out += relu_param_text(layer.activation);
      out += "  bottom: \"" + layer.name + "\"\n";
      out += "  top: \"" + layer.name + "\"\n";
      out += "}\n";
    }
  }
  return out;
}

Result<NetParameter> to_net_parameter(const nn::Network& network,
                                      const nn::WeightStore& weights) {
  CONDOR_RETURN_IF_ERROR(weights.validate_against(network));
  CONDOR_ASSIGN_OR_RETURN(auto shapes, network.infer_shapes());

  NetParameter net;
  net.name = network.name();
  const auto& layers = network.layers();
  std::vector<std::string> top_of(layers.size());
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const nn::LayerSpec& spec = layers[i];
    CONDOR_ASSIGN_OR_RETURN(const auto prods, network.producers(i));
    top_of[i] = spec.name;
    if (spec.kind == nn::LayerKind::kInput) {
      continue;
    }
    LayerParameter layer;
    layer.name = spec.name;
    layer.bottom.push_back(top_of[prods[0]]);
    if (prods.size() > 1) {
      layer.bottom.push_back(top_of[prods[1]]);
    }
    layer.top.push_back(spec.name);
    switch (spec.kind) {
      case nn::LayerKind::kConvolution: {
        layer.type = "Convolution";
        ConvolutionParameter param;
        param.num_output = static_cast<std::uint32_t>(spec.num_output);
        param.bias_term = spec.has_bias;
        if (spec.kernel_h == spec.kernel_w) {
          param.kernel_size.push_back(static_cast<std::uint32_t>(spec.kernel_h));
        } else {
          param.kernel_h = static_cast<std::uint32_t>(spec.kernel_h);
          param.kernel_w = static_cast<std::uint32_t>(spec.kernel_w);
        }
        param.stride.push_back(static_cast<std::uint32_t>(spec.stride));
        if (spec.pad != 0) {
          param.pad.push_back(static_cast<std::uint32_t>(spec.pad));
        }
        layer.convolution_param = std::move(param);
        break;
      }
      case nn::LayerKind::kPooling: {
        layer.type = "Pooling";
        PoolingParameter param;
        param.pool = spec.pool_method == nn::PoolMethod::kMax
                         ? PoolingParameter::Method::kMax
                         : PoolingParameter::Method::kAve;
        param.kernel_size = static_cast<std::uint32_t>(spec.kernel_h);
        param.stride = static_cast<std::uint32_t>(spec.stride);
        layer.pooling_param = param;
        break;
      }
      case nn::LayerKind::kInnerProduct: {
        layer.type = "InnerProduct";
        InnerProductParameter param;
        param.num_output = static_cast<std::uint32_t>(spec.num_output);
        param.bias_term = spec.has_bias;
        layer.inner_product_param = param;
        break;
      }
      case nn::LayerKind::kActivation:
        layer.type = caffe_activation_type(spec.activation);
        if (spec.activation == nn::Activation::kLeakyReLU) {
          ReLUParameter param;
          param.negative_slope = nn::kLeakyReluSlope;
          layer.relu_param = param;
        }
        // in-place: top == bottom
        layer.top[0] = layer.bottom[0];
        top_of[i] = layer.bottom[0];
        break;
      case nn::LayerKind::kSoftmax:
        layer.type = "Softmax";
        break;
      case nn::LayerKind::kEltwiseAdd: {
        layer.type = "Eltwise";
        EltwiseParameter param;
        param.operation = EltwiseParameter::Operation::kSum;
        layer.eltwise_param = param;
        break;
      }
      case nn::LayerKind::kConcat: {
        layer.type = "Concat";
        ConcatParameter param;
        layer.concat_param = param;
        break;
      }
      case nn::LayerKind::kUpsample:
        // No upstream BVLC param message: topology (incl. the scale) comes
        // from the prototxt; the caffemodel only carries weights.
        layer.type = "Upsample";
        break;
      case nn::LayerKind::kInput:
        break;  // handled above
    }
    if (spec.has_weights()) {
      const nn::LayerParameters* params = weights.find(spec.name);
      // validate_against guarantees presence.
      BlobProto weight_blob;
      BlobShape weight_shape;
      for (const std::size_t dim : params->weights.shape().dims()) {
        weight_shape.dim.push_back(static_cast<std::int64_t>(dim));
      }
      weight_blob.shape = std::move(weight_shape);
      weight_blob.data.assign(params->weights.data().begin(),
                              params->weights.data().end());
      layer.blobs.push_back(std::move(weight_blob));
      if (spec.has_bias) {
        BlobProto bias_blob;
        BlobShape bias_shape;
        bias_shape.dim.push_back(static_cast<std::int64_t>(params->bias.size()));
        bias_blob.shape = std::move(bias_shape);
        bias_blob.data.assign(params->bias.data().begin(), params->bias.data().end());
        layer.blobs.push_back(std::move(bias_blob));
      }
    }
    net.layer.push_back(std::move(layer));
    (void)shapes;
  }
  return net;
}

Result<std::vector<std::byte>> to_caffemodel(const nn::Network& network,
                                             const nn::WeightStore& weights) {
  CONDOR_ASSIGN_OR_RETURN(NetParameter net, to_net_parameter(network, weights));
  return encode_net_parameter(net);
}

Status write_caffe_fixture(const nn::Network& network,
                           const nn::WeightStore& weights,
                           const std::string& path_stem) {
  CONDOR_ASSIGN_OR_RETURN(std::string prototxt, to_prototxt(network));
  CONDOR_RETURN_IF_ERROR(write_text_file(path_stem + ".prototxt", prototxt));
  CONDOR_ASSIGN_OR_RETURN(auto caffemodel, to_caffemodel(network, weights));
  return write_file(path_stem + ".caffemodel", caffemodel);
}

}  // namespace condor::caffe

// Generic protobuf *text format* parser — the format of Caffe `.prototxt`
// files. The parser builds an untyped field tree (TextMessage); the typed
// mapping to Caffe message structs lives in caffe_pb.cpp. Supported syntax:
//
//   name: "LeNet"            # scalar field (string)
//   input_dim: 64            # scalar field (number)
//   pool: MAX                # scalar field (enum identifier)
//   layer { ... }            # nested message (colon before '{' optional)
//   kernel_size: 5 stride: 1 # newlines are not significant
//   # comments run to end of line
//
// Repeated fields simply appear multiple times.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace condor::caffe {

class TextMessage;

/// One field occurrence: either a scalar token or a nested message.
struct TextField {
  std::string name;
  std::string scalar;                       ///< unquoted scalar token
  std::unique_ptr<TextMessage> message;     ///< non-null for nested messages
  bool is_message() const noexcept { return message != nullptr; }
};

/// An ordered multiset of fields.
class TextMessage {
 public:
  [[nodiscard]] const std::vector<TextField>& fields() const noexcept {
    return fields_;
  }

  /// First scalar occurrence of `name`, or empty optional-like nullptr.
  [[nodiscard]] const std::string* scalar(std::string_view name) const noexcept;

  /// All scalar occurrences of `name` in order.
  [[nodiscard]] std::vector<std::string_view> scalars(std::string_view name) const;

  /// First nested-message occurrence of `name`, or nullptr.
  [[nodiscard]] const TextMessage* message(std::string_view name) const noexcept;

  /// All nested-message occurrences of `name` in order.
  [[nodiscard]] std::vector<const TextMessage*> messages(std::string_view name) const;

  [[nodiscard]] bool has(std::string_view name) const noexcept;

  // Typed scalar readers with error reporting ("field 'x' of layer ...").
  [[nodiscard]] Result<std::int64_t> get_int(std::string_view name) const;
  [[nodiscard]] std::int64_t get_int_or(std::string_view name,
                                        std::int64_t fallback) const;
  [[nodiscard]] Result<double> get_double(std::string_view name) const;
  [[nodiscard]] Result<std::string> get_string(std::string_view name) const;
  [[nodiscard]] bool get_bool_or(std::string_view name, bool fallback) const;

  void add_scalar(std::string name, std::string value);
  TextMessage& add_message(std::string name);

 private:
  std::vector<TextField> fields_;
};

/// Parses a whole prototxt document (an implicit top-level message).
Result<TextMessage> parse_text_format(std::string_view text);

}  // namespace condor::caffe

// Typed subset of Caffe's `caffe.proto` schema with binary wire codec.
//
// Field numbers match upstream caffe.proto (BVLC Caffe), so files produced
// by this encoder are structurally valid NetParameter messages and real
// `.caffemodel` files restricted to this layer subset decode correctly.
// Unknown fields are skipped on decode (proto2 semantics).
//
// Subset covered — everything Condor consumes (paper §3.1.1: the frontend
// reads a prototxt for topology and a caffemodel for weights):
//   NetParameter, LayerParameter, BlobProto, BlobShape,
//   ConvolutionParameter, PoolingParameter, InnerProductParameter,
//   EltwiseParameter, ConcatParameter, ReLUParameter, InputParameter.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "protowire/wire.hpp"

namespace condor::caffe {

/// caffe.BlobShape — dim = 1 (repeated int64, packed).
struct BlobShape {
  std::vector<std::int64_t> dim;
};

/// caffe.BlobProto — legacy 4-D fields 1-4, data = 5 (packed float),
/// shape = 7.
struct BlobProto {
  std::optional<BlobShape> shape;
  std::vector<float> data;
  // Legacy pre-BlobShape dimensions (still emitted by old models).
  std::optional<std::int32_t> num, channels, height, width;

  /// Resolved dimensionality: `shape` when present, else legacy 4-D.
  [[nodiscard]] std::vector<std::int64_t> resolved_shape() const;
};

/// caffe.ConvolutionParameter (fields used by Condor).
struct ConvolutionParameter {
  std::uint32_t num_output = 0;            // 1
  bool bias_term = true;                   // 2
  std::vector<std::uint32_t> pad;          // 3 (repeated)
  std::vector<std::uint32_t> kernel_size;  // 4 (repeated)
  std::vector<std::uint32_t> stride;       // 6 (repeated)
  std::optional<std::uint32_t> kernel_h;   // 11
  std::optional<std::uint32_t> kernel_w;   // 12
  std::optional<std::uint32_t> stride_h;   // 13
  std::optional<std::uint32_t> stride_w;   // 14
};

/// caffe.PoolingParameter.
struct PoolingParameter {
  enum class Method : std::uint32_t { kMax = 0, kAve = 1, kStochastic = 2 };
  Method pool = Method::kMax;     // 1
  std::uint32_t kernel_size = 0;  // 2
  std::uint32_t stride = 1;       // 3
  std::uint32_t pad = 0;          // 4
};

/// caffe.InnerProductParameter.
struct InnerProductParameter {
  std::uint32_t num_output = 0;  // 1
  bool bias_term = true;         // 2
};

/// caffe.EltwiseParameter.
struct EltwiseParameter {
  enum class Operation : std::uint32_t { kProd = 0, kSum = 1, kMax = 2 };
  Operation operation = Operation::kSum;  // 1
};

/// caffe.ConcatParameter — axis = 2 (default 1: channels).
struct ConcatParameter {
  std::int32_t axis = 1;  // 2
};

/// caffe.ReLUParameter — negative_slope = 1 (leaky ReLU when non-zero).
struct ReLUParameter {
  float negative_slope = 0.0F;  // 1
};

/// caffe.InputParameter — shape = 1 (repeated BlobShape).
struct InputParameter {
  std::vector<BlobShape> shape;
};

/// caffe.LayerParameter (the modern field-100 message).
struct LayerParameter {
  std::string name;                 // 1
  std::string type;                 // 2 ("Convolution", "Pooling", ...)
  std::vector<std::string> bottom;  // 3
  std::vector<std::string> top;     // 4
  std::vector<BlobProto> blobs;     // 7
  std::optional<ConcatParameter> concat_param;             // 104
  std::optional<ConvolutionParameter> convolution_param;   // 106
  std::optional<EltwiseParameter> eltwise_param;           // 110
  std::optional<InnerProductParameter> inner_product_param;  // 117
  std::optional<PoolingParameter> pooling_param;           // 121
  std::optional<ReLUParameter> relu_param;                 // 123
  std::optional<InputParameter> input_param;               // 143
};

/// caffe.NetParameter.
struct NetParameter {
  std::string name;                        // 1
  std::vector<std::string> input;          // 3 (legacy input declaration)
  std::vector<std::int32_t> input_dim;     // 4 (legacy, 4 per input)
  std::vector<BlobShape> input_shape;      // 8
  std::vector<LayerParameter> layer;       // 100
};

/// Serializes a NetParameter to protobuf wire bytes (a `.caffemodel` body).
std::vector<std::byte> encode_net_parameter(const NetParameter& net);

/// Decodes wire bytes into a NetParameter, skipping unknown fields.
Result<NetParameter> decode_net_parameter(std::span<const std::byte> data);

}  // namespace condor::caffe

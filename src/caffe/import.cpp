#include "caffe/import.hpp"

#include <algorithm>

#include "common/byte_io.hpp"
#include "common/logging.hpp"
#include "common/strings.hpp"

namespace condor::caffe {
namespace {

constexpr std::string_view kTag = "caffe-import";

/// Layer types that exist only for training and carry no inference-time
/// computation; the importer skips them.
bool is_training_only(std::string_view type) {
  return type == "Data" || type == "Accuracy" || type == "Dropout" ||
         type == "HDF5Data" || type == "ImageData";
}

Result<nn::Activation> activation_for_type(std::string_view type) {
  if (type == "ReLU") {
    return nn::Activation::kReLU;
  }
  if (type == "Sigmoid") {
    return nn::Activation::kSigmoid;
  }
  if (type == "TanH") {
    return nn::Activation::kTanH;
  }
  return invalid_input("not an activation type: " + std::string(type));
}

/// Reads kernel/stride/pad from a convolution_param text message, handling
/// both the square `kernel_size` form and the `kernel_h`/`kernel_w` pair.
Status read_conv_geometry(const TextMessage& param, nn::LayerSpec& layer) {
  if (param.has("kernel_h") || param.has("kernel_w")) {
    CONDOR_ASSIGN_OR_RETURN(std::int64_t kh, param.get_int("kernel_h"));
    CONDOR_ASSIGN_OR_RETURN(std::int64_t kw, param.get_int("kernel_w"));
    layer.kernel_h = static_cast<std::size_t>(kh);
    layer.kernel_w = static_cast<std::size_t>(kw);
  } else {
    CONDOR_ASSIGN_OR_RETURN(std::int64_t k, param.get_int("kernel_size"));
    layer.kernel_h = layer.kernel_w = static_cast<std::size_t>(k);
  }
  layer.stride = static_cast<std::size_t>(param.get_int_or("stride", 1));
  layer.pad = static_cast<std::size_t>(param.get_int_or("pad", 0));
  return Status::ok();
}

/// Resolves the input shape from any of the three Caffe input declarations.
Result<nn::LayerSpec> resolve_input(const TextMessage& root) {
  nn::LayerSpec input;
  input.kind = nn::LayerKind::kInput;
  input.name = "data";

  const auto assign_dims = [&input](const std::vector<std::int64_t>& dims) -> Status {
    // Caffe shapes are NCHW; batch dim is handled by the runtime.
    if (dims.size() == 4) {
      input.input_channels = static_cast<std::size_t>(dims[1]);
      input.input_height = static_cast<std::size_t>(dims[2]);
      input.input_width = static_cast<std::size_t>(dims[3]);
    } else if (dims.size() == 3) {
      input.input_channels = static_cast<std::size_t>(dims[0]);
      input.input_height = static_cast<std::size_t>(dims[1]);
      input.input_width = static_cast<std::size_t>(dims[2]);
    } else {
      return invalid_input(strings::format(
          "input shape must have 3 or 4 dims, got %zu", dims.size()));
    }
    return Status::ok();
  };

  // Style 1: legacy `input:` + `input_dim:` x4 at the top level.
  if (root.has("input") && root.has("input_dim")) {
    const auto dims_text = root.scalars("input_dim");
    std::vector<std::int64_t> dims;
    for (const auto& token : dims_text) {
      dims.push_back(std::strtoll(std::string(token).c_str(), nullptr, 10));
    }
    CONDOR_RETURN_IF_ERROR(assign_dims(dims));
    if (const std::string* name = root.scalar("input")) {
      input.name = *name;
    }
    return input;
  }

  // Style 2: `input:` + `input_shape { dim: ... }`.
  if (root.has("input") && root.message("input_shape") != nullptr) {
    const TextMessage* shape = root.message("input_shape");
    std::vector<std::int64_t> dims;
    for (const auto& token : shape->scalars("dim")) {
      dims.push_back(std::strtoll(std::string(token).c_str(), nullptr, 10));
    }
    CONDOR_RETURN_IF_ERROR(assign_dims(dims));
    if (const std::string* name = root.scalar("input")) {
      input.name = *name;
    }
    return input;
  }

  // Style 3: an explicit `layer { type: "Input" input_param { shape {...} } }`
  // or a training Data layer (whose topology we cannot infer — rejected).
  for (const TextMessage* layer : root.messages("layer")) {
    auto type = layer->get_string("type");
    if (!type.is_ok() || type.value() != "Input") {
      continue;
    }
    const TextMessage* param = layer->message("input_param");
    if (param == nullptr || param->message("shape") == nullptr) {
      return invalid_input("Input layer without input_param.shape");
    }
    std::vector<std::int64_t> dims;
    for (const auto& token : param->message("shape")->scalars("dim")) {
      dims.push_back(std::strtoll(std::string(token).c_str(), nullptr, 10));
    }
    CONDOR_RETURN_IF_ERROR(assign_dims(dims));
    if (auto name = layer->get_string("name"); name.is_ok()) {
      input.name = name.value();
    }
    return input;
  }

  return invalid_input(
      "prototxt declares no input shape (need input_dim, input_shape, or an "
      "Input layer; training Data layers carry no static shape)");
}

}  // namespace

Result<nn::Network> network_from_prototxt(std::string_view prototxt_text) {
  CONDOR_ASSIGN_OR_RETURN(TextMessage root, parse_text_format(prototxt_text));

  nn::Network network;
  if (const std::string* name = root.scalar("name")) {
    network.set_name(*name);
  } else {
    network.set_name("caffe-net");
  }

  CONDOR_ASSIGN_OR_RETURN(nn::LayerSpec input, resolve_input(root));
  network.add(input);

  // Accept both the modern `layer` and legacy `layers` field names.
  std::vector<const TextMessage*> layer_messages = root.messages("layer");
  for (const TextMessage* legacy : root.messages("layers")) {
    layer_messages.push_back(legacy);
  }

  for (const TextMessage* message : layer_messages) {
    CONDOR_ASSIGN_OR_RETURN(std::string type, message->get_string("type"));
    CONDOR_ASSIGN_OR_RETURN(std::string name, message->get_string("name"));
    if (type == "Input" || is_training_only(type)) {
      continue;
    }

    if (type == "Convolution") {
      nn::LayerSpec layer;
      layer.kind = nn::LayerKind::kConvolution;
      layer.name = std::move(name);
      const TextMessage* param = message->message("convolution_param");
      if (param == nullptr) {
        return invalid_input("convolution '" + layer.name +
                             "' missing convolution_param");
      }
      CONDOR_ASSIGN_OR_RETURN(std::int64_t num_output, param->get_int("num_output"));
      layer.num_output = static_cast<std::size_t>(num_output);
      layer.has_bias = param->get_bool_or("bias_term", true);
      CONDOR_RETURN_IF_ERROR(read_conv_geometry(*param, layer));
      network.add(std::move(layer));
      continue;
    }

    if (type == "Pooling") {
      nn::LayerSpec layer;
      layer.kind = nn::LayerKind::kPooling;
      layer.name = std::move(name);
      const TextMessage* param = message->message("pooling_param");
      if (param == nullptr) {
        return invalid_input("pooling '" + layer.name + "' missing pooling_param");
      }
      CONDOR_ASSIGN_OR_RETURN(std::int64_t kernel, param->get_int("kernel_size"));
      layer.kernel_h = layer.kernel_w = static_cast<std::size_t>(kernel);
      layer.stride = static_cast<std::size_t>(param->get_int_or("stride", 1));
      if (const std::string* method = param->scalar("pool")) {
        CONDOR_ASSIGN_OR_RETURN(layer.pool_method, nn::parse_pool_method(*method));
      }
      network.add(std::move(layer));
      continue;
    }

    if (type == "InnerProduct") {
      nn::LayerSpec layer;
      layer.kind = nn::LayerKind::kInnerProduct;
      layer.name = std::move(name);
      const TextMessage* param = message->message("inner_product_param");
      if (param == nullptr) {
        return invalid_input("inner product '" + layer.name +
                             "' missing inner_product_param");
      }
      CONDOR_ASSIGN_OR_RETURN(std::int64_t num_output, param->get_int("num_output"));
      layer.num_output = static_cast<std::size_t>(num_output);
      layer.has_bias = param->get_bool_or("bias_term", true);
      network.add(std::move(layer));
      continue;
    }

    if (auto activation = activation_for_type(type); activation.is_ok()) {
      // In-place activations (bottom == top) fuse into the producing layer —
      // this is how the generated PE applies them (inside the output loop).
      const auto bottoms = message->scalars("bottom");
      const auto tops = message->scalars("top");
      const bool in_place =
          !bottoms.empty() && !tops.empty() && bottoms[0] == tops[0];
      nn::LayerSpec* producer =
          network.layers().empty() ? nullptr : &network.layers().back();
      if (in_place && producer != nullptr && producer->has_weights() &&
          producer->activation == nn::Activation::kNone) {
        producer->activation = activation.value();
        CONDOR_LOG_DEBUG(kTag) << "fused activation '" << name << "' into '"
                               << producer->name << "'";
      } else {
        nn::LayerSpec layer;
        layer.kind = nn::LayerKind::kActivation;
        layer.name = std::move(name);
        layer.activation = activation.value();
        network.add(std::move(layer));
      }
      continue;
    }

    if (type == "Softmax" || type == "SoftmaxWithLoss") {
      nn::LayerSpec layer;
      layer.kind = nn::LayerKind::kSoftmax;
      layer.name = std::move(name);
      network.add(std::move(layer));
      continue;
    }

    return unsupported("Caffe layer type '" + type + "' (layer '" + name +
                       "') is not supported by Condor");
  }

  CONDOR_RETURN_IF_ERROR(network.validate());
  return network;
}

Result<nn::WeightStore> weights_from_net_parameter(const NetParameter& net,
                                                   const nn::Network& network) {
  CONDOR_ASSIGN_OR_RETURN(auto shapes, network.infer_shapes());
  nn::WeightStore store;
  const auto& layers = network.layers();
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (!layers[i].has_weights()) {
      continue;
    }
    const auto it =
        std::find_if(net.layer.begin(), net.layer.end(),
                     [&](const LayerParameter& l) { return l.name == layers[i].name; });
    if (it == net.layer.end()) {
      return not_found("caffemodel has no layer '" + layers[i].name + "'");
    }
    if (it->blobs.empty()) {
      return invalid_input("caffemodel layer '" + layers[i].name +
                           "' carries no weight blobs");
    }
    CONDOR_ASSIGN_OR_RETURN(auto expected,
                            nn::parameter_shapes(layers[i], shapes[i].input));

    nn::LayerParameters params;
    const BlobProto& weight_blob = it->blobs[0];
    if (weight_blob.data.size() != expected.weights.element_count()) {
      return invalid_input(strings::format(
          "layer '%s': weight blob has %zu values, expected %zu",
          layers[i].name.c_str(), weight_blob.data.size(),
          expected.weights.element_count()));
    }
    params.weights = Tensor(expected.weights, weight_blob.data);

    if (layers[i].has_bias) {
      if (it->blobs.size() < 2) {
        return invalid_input("layer '" + layers[i].name +
                             "' declares a bias but caffemodel has no bias blob");
      }
      const BlobProto& bias_blob = it->blobs[1];
      if (bias_blob.data.size() != expected.bias.element_count()) {
        return invalid_input("layer '" + layers[i].name +
                             "': bias blob size mismatch");
      }
      params.bias = Tensor(expected.bias, bias_blob.data);
    }
    store.set(layers[i].name, std::move(params));
  }
  CONDOR_RETURN_IF_ERROR(store.validate_against(network));
  return store;
}

Result<nn::WeightStore> weights_from_caffemodel(std::span<const std::byte> data,
                                                const nn::Network& network) {
  CONDOR_ASSIGN_OR_RETURN(NetParameter net, decode_net_parameter(data));
  return weights_from_net_parameter(net, network);
}

Result<CaffeModel> load_caffe_model(std::string_view prototxt_text,
                                    std::span<const std::byte> caffemodel_bytes) {
  CONDOR_ASSIGN_OR_RETURN(nn::Network network,
                          network_from_prototxt(prototxt_text));
  CONDOR_ASSIGN_OR_RETURN(nn::WeightStore weights,
                          weights_from_caffemodel(caffemodel_bytes, network));
  CONDOR_LOG_INFO(kTag) << "imported '" << network.name() << "' ("
                        << network.layer_count() << " layers)";
  return CaffeModel{std::move(network), std::move(weights)};
}

Result<CaffeModel> load_caffe_model_files(const std::string& prototxt_path,
                                          const std::string& caffemodel_path) {
  CONDOR_ASSIGN_OR_RETURN(std::string prototxt, read_text_file(prototxt_path));
  CONDOR_ASSIGN_OR_RETURN(auto caffemodel, read_file(caffemodel_path));
  return load_caffe_model(prototxt, caffemodel);
}

}  // namespace condor::caffe

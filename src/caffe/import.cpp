#include "caffe/import.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>

#include "common/byte_io.hpp"
#include "common/logging.hpp"
#include "common/strings.hpp"

namespace condor::caffe {
namespace {

constexpr std::string_view kTag = "caffe-import";

/// Layer types that exist only for training and carry no inference-time
/// computation; the importer skips them.
bool is_training_only(std::string_view type) {
  return type == "Data" || type == "Accuracy" || type == "Dropout" ||
         type == "HDF5Data" || type == "ImageData";
}

/// Parses a FLOAT scalar field, or the fallback when absent.
float float_or(const TextMessage& message, std::string_view name,
               float fallback) {
  const std::string* text = message.scalar(name);
  return text == nullptr ? fallback : std::strtof(text->c_str(), nullptr);
}

/// Maps an activation layer type to Condor's enum. ReLU consults
/// relu_param.negative_slope: zero is a plain ReLU, the Darknet 0.1 slope
/// is Condor's leaky ReLU, anything else cannot be represented.
Result<nn::Activation> activation_for_layer(const TextMessage& message,
                                            std::string_view type,
                                            const std::string& name) {
  if (type == "ReLU") {
    float slope = 0.0F;
    if (const TextMessage* param = message.message("relu_param")) {
      slope = float_or(*param, "negative_slope", 0.0F);
    }
    if (slope == 0.0F) {
      return nn::Activation::kReLU;
    }
    if (slope == nn::kLeakyReluSlope) {
      return nn::Activation::kLeakyReLU;
    }
    return unsupported(strings::format(
        "ReLU '%s': negative_slope must be 0 or %g (got %g)", name.c_str(),
        static_cast<double>(nn::kLeakyReluSlope),
        static_cast<double>(slope)));
  }
  if (type == "Sigmoid") {
    return nn::Activation::kSigmoid;
  }
  if (type == "TanH") {
    return nn::Activation::kTanH;
  }
  return invalid_input("not an activation type: " + std::string(type));
}

/// Reads kernel/stride/pad from a convolution_param text message, handling
/// both the square `kernel_size` form and the `kernel_h`/`kernel_w` pair.
Status read_conv_geometry(const TextMessage& param, nn::LayerSpec& layer) {
  if (param.has("kernel_h") || param.has("kernel_w")) {
    CONDOR_ASSIGN_OR_RETURN(std::int64_t kh, param.get_int("kernel_h"));
    CONDOR_ASSIGN_OR_RETURN(std::int64_t kw, param.get_int("kernel_w"));
    layer.kernel_h = static_cast<std::size_t>(kh);
    layer.kernel_w = static_cast<std::size_t>(kw);
  } else {
    CONDOR_ASSIGN_OR_RETURN(std::int64_t k, param.get_int("kernel_size"));
    layer.kernel_h = layer.kernel_w = static_cast<std::size_t>(k);
  }
  layer.stride = static_cast<std::size_t>(param.get_int_or("stride", 1));
  layer.pad = static_cast<std::size_t>(param.get_int_or("pad", 0));
  return Status::ok();
}

/// Resolves the input shape from any of the three Caffe input declarations.
Result<nn::LayerSpec> resolve_input(const TextMessage& root) {
  nn::LayerSpec input;
  input.kind = nn::LayerKind::kInput;
  input.name = "data";

  const auto assign_dims = [&input](const std::vector<std::int64_t>& dims) -> Status {
    // Caffe shapes are NCHW; batch dim is handled by the runtime.
    if (dims.size() == 4) {
      input.input_channels = static_cast<std::size_t>(dims[1]);
      input.input_height = static_cast<std::size_t>(dims[2]);
      input.input_width = static_cast<std::size_t>(dims[3]);
    } else if (dims.size() == 3) {
      input.input_channels = static_cast<std::size_t>(dims[0]);
      input.input_height = static_cast<std::size_t>(dims[1]);
      input.input_width = static_cast<std::size_t>(dims[2]);
    } else {
      return invalid_input(strings::format(
          "input shape must have 3 or 4 dims, got %zu", dims.size()));
    }
    return Status::ok();
  };

  // Style 1: legacy `input:` + `input_dim:` x4 at the top level.
  if (root.has("input") && root.has("input_dim")) {
    const auto dims_text = root.scalars("input_dim");
    std::vector<std::int64_t> dims;
    for (const auto& token : dims_text) {
      dims.push_back(std::strtoll(std::string(token).c_str(), nullptr, 10));
    }
    CONDOR_RETURN_IF_ERROR(assign_dims(dims));
    if (const std::string* name = root.scalar("input")) {
      input.name = *name;
    }
    return input;
  }

  // Style 2: `input:` + `input_shape { dim: ... }`.
  if (root.has("input") && root.message("input_shape") != nullptr) {
    const TextMessage* shape = root.message("input_shape");
    std::vector<std::int64_t> dims;
    for (const auto& token : shape->scalars("dim")) {
      dims.push_back(std::strtoll(std::string(token).c_str(), nullptr, 10));
    }
    CONDOR_RETURN_IF_ERROR(assign_dims(dims));
    if (const std::string* name = root.scalar("input")) {
      input.name = *name;
    }
    return input;
  }

  // Style 3: an explicit `layer { type: "Input" input_param { shape {...} } }`
  // or a training Data layer (whose topology we cannot infer — rejected).
  for (const TextMessage* layer : root.messages("layer")) {
    auto type = layer->get_string("type");
    if (!type.is_ok() || type.value() != "Input") {
      continue;
    }
    const TextMessage* param = layer->message("input_param");
    if (param == nullptr || param->message("shape") == nullptr) {
      return invalid_input("Input layer without input_param.shape");
    }
    std::vector<std::int64_t> dims;
    for (const auto& token : param->message("shape")->scalars("dim")) {
      dims.push_back(std::strtoll(std::string(token).c_str(), nullptr, 10));
    }
    CONDOR_RETURN_IF_ERROR(assign_dims(dims));
    if (auto name = layer->get_string("name"); name.is_ok()) {
      input.name = name.value();
    }
    return input;
  }

  return invalid_input(
      "prototxt declares no input shape (need input_dim, input_shape, or an "
      "Input layer; training Data layers carry no static shape)");
}

}  // namespace

Result<nn::Network> network_from_prototxt(std::string_view prototxt_text,
                                          std::vector<BatchNormFold>* folds) {
  CONDOR_ASSIGN_OR_RETURN(TextMessage root, parse_text_format(prototxt_text));

  nn::Network network;
  if (const std::string* name = root.scalar("name")) {
    network.set_name(*name);
  } else {
    network.set_name("caffe-net");
  }

  CONDOR_ASSIGN_OR_RETURN(nn::LayerSpec input, resolve_input(root));
  network.add(input);

  // Caffe blob name -> the Condor layer whose output carries it. In-place
  // layers and folded BatchNorm/Scale pairs alias a blob onto the layer
  // that last (re)wrote it, which is exactly Caffe's overwrite semantics.
  std::map<std::string, std::string> blob_layer;
  blob_layer[input.name] = input.name;

  const auto resolve = [&](std::string_view blob) -> Result<std::string> {
    const auto it = blob_layer.find(std::string(blob));
    if (it == blob_layer.end()) {
      return invalid_input("blob '" + std::string(blob) +
                           "' is consumed before any layer produces it");
    }
    return it->second;
  };

  // Registers `layer`. The explicit `inputs` list is spelled out only when
  // the producers differ from the implicit previous-layer chain, keeping
  // linear prototxts byte-identical to the legacy importer. A layer with
  // no `bottom` chains implicitly (legacy prototxts omit blob wiring).
  const auto attach = [&](nn::LayerSpec layer,
                          std::vector<std::string> producers,
                          std::string_view top) {
    const std::string& previous = network.layers().back().name;
    if (!producers.empty() &&
        !(producers.size() == 1 && producers.front() == previous)) {
      layer.inputs = std::move(producers);
    }
    blob_layer[top.empty() ? layer.name : std::string(top)] = layer.name;
    network.add(std::move(layer));
  };

  // Accept both the modern `layer` and legacy `layers` field names.
  std::vector<const TextMessage*> layer_messages = root.messages("layer");
  for (const TextMessage* legacy : root.messages("layers")) {
    layer_messages.push_back(legacy);
  }

  for (const TextMessage* message : layer_messages) {
    CONDOR_ASSIGN_OR_RETURN(std::string type, message->get_string("type"));
    CONDOR_ASSIGN_OR_RETURN(std::string name, message->get_string("name"));
    const auto bottoms = message->scalars("bottom");
    const auto tops = message->scalars("top");
    if (type == "Input" || is_training_only(type)) {
      // Keep blob continuity: Input/Data tops carry the network input,
      // and inference no-ops (Dropout) forward their bottom unchanged.
      for (const auto& t : tops) {
        if (type == "Input" || bottoms.empty()) {
          blob_layer[std::string(t)] = input.name;
        } else if (const auto it = blob_layer.find(std::string(bottoms[0]));
                   it != blob_layer.end()) {
          blob_layer[std::string(t)] = it->second;
        }
      }
      continue;
    }
    const std::string_view top = tops.empty() ? std::string_view() : tops[0];

    // Resolves the single data bottom, tolerating legacy prototxts that
    // omit blob wiring entirely (implicit chain).
    const auto single_producer =
        [&]() -> Result<std::vector<std::string>> {
      if (bottoms.empty()) {
        return std::vector<std::string>{};
      }
      CONDOR_ASSIGN_OR_RETURN(std::string producer, resolve(bottoms[0]));
      return std::vector<std::string>{std::move(producer)};
    };

    if (type == "Convolution") {
      nn::LayerSpec layer;
      layer.kind = nn::LayerKind::kConvolution;
      layer.name = std::move(name);
      const TextMessage* param = message->message("convolution_param");
      if (param == nullptr) {
        return invalid_input("convolution '" + layer.name +
                             "' missing convolution_param");
      }
      CONDOR_ASSIGN_OR_RETURN(std::int64_t num_output, param->get_int("num_output"));
      layer.num_output = static_cast<std::size_t>(num_output);
      layer.has_bias = param->get_bool_or("bias_term", true);
      CONDOR_RETURN_IF_ERROR(read_conv_geometry(*param, layer));
      CONDOR_ASSIGN_OR_RETURN(auto producers, single_producer());
      attach(std::move(layer), std::move(producers), top);
      continue;
    }

    if (type == "Pooling") {
      nn::LayerSpec layer;
      layer.kind = nn::LayerKind::kPooling;
      layer.name = std::move(name);
      const TextMessage* param = message->message("pooling_param");
      if (param == nullptr) {
        return invalid_input("pooling '" + layer.name + "' missing pooling_param");
      }
      CONDOR_ASSIGN_OR_RETURN(std::int64_t kernel, param->get_int("kernel_size"));
      layer.kernel_h = layer.kernel_w = static_cast<std::size_t>(kernel);
      layer.stride = static_cast<std::size_t>(param->get_int_or("stride", 1));
      if (const std::string* method = param->scalar("pool")) {
        CONDOR_ASSIGN_OR_RETURN(layer.pool_method, nn::parse_pool_method(*method));
      }
      CONDOR_ASSIGN_OR_RETURN(auto producers, single_producer());
      attach(std::move(layer), std::move(producers), top);
      continue;
    }

    if (type == "InnerProduct") {
      nn::LayerSpec layer;
      layer.kind = nn::LayerKind::kInnerProduct;
      layer.name = std::move(name);
      const TextMessage* param = message->message("inner_product_param");
      if (param == nullptr) {
        return invalid_input("inner product '" + layer.name +
                             "' missing inner_product_param");
      }
      CONDOR_ASSIGN_OR_RETURN(std::int64_t num_output, param->get_int("num_output"));
      layer.num_output = static_cast<std::size_t>(num_output);
      layer.has_bias = param->get_bool_or("bias_term", true);
      CONDOR_ASSIGN_OR_RETURN(auto producers, single_producer());
      attach(std::move(layer), std::move(producers), top);
      continue;
    }

    if (type == "Eltwise") {
      if (const TextMessage* param = message->message("eltwise_param")) {
        if (const std::string* operation = param->scalar("operation");
            operation != nullptr && *operation != "SUM") {
          return unsupported("Eltwise '" + name + "': operation '" +
                             *operation + "' (only SUM is supported)");
        }
      }
      if (bottoms.size() != 2) {
        return unsupported("Eltwise '" + name +
                           "': exactly 2 bottoms are supported");
      }
      CONDOR_ASSIGN_OR_RETURN(std::string lhs, resolve(bottoms[0]));
      CONDOR_ASSIGN_OR_RETURN(std::string rhs, resolve(bottoms[1]));
      nn::LayerSpec layer;
      layer.kind = nn::LayerKind::kEltwiseAdd;
      layer.name = std::move(name);
      attach(std::move(layer), {std::move(lhs), std::move(rhs)}, top);
      continue;
    }

    if (type == "Concat") {
      std::int64_t axis = 1;
      if (const TextMessage* param = message->message("concat_param")) {
        axis = param->get_int_or("axis", param->get_int_or("concat_dim", 1));
      }
      if (axis != 1) {
        return unsupported("Concat '" + name +
                           "': only channel (axis=1) concatenation is "
                           "supported");
      }
      if (bottoms.size() != 2) {
        return unsupported("Concat '" + name +
                           "': exactly 2 bottoms are supported");
      }
      CONDOR_ASSIGN_OR_RETURN(std::string lhs, resolve(bottoms[0]));
      CONDOR_ASSIGN_OR_RETURN(std::string rhs, resolve(bottoms[1]));
      nn::LayerSpec layer;
      layer.kind = nn::LayerKind::kConcat;
      layer.name = std::move(name);
      attach(std::move(layer), {std::move(lhs), std::move(rhs)}, top);
      continue;
    }

    if (type == "Upsample") {
      nn::LayerSpec layer;
      layer.kind = nn::LayerKind::kUpsample;
      layer.name = std::move(name);
      layer.stride = 2;
      if (const TextMessage* param = message->message("upsample_param")) {
        layer.stride = static_cast<std::size_t>(param->get_int_or("scale", 2));
      }
      CONDOR_ASSIGN_OR_RETURN(auto producers, single_producer());
      attach(std::move(layer), std::move(producers), top);
      continue;
    }

    if (type == "BatchNorm") {
      // Earmarked for folding into the preceding convolution; the actual
      // statistics live in the caffemodel and are applied by the weight
      // loader. The conv gains a bias to absorb the shift.
      if (folds == nullptr) {
        return unsupported("BatchNorm '" + name +
                           "': caller provides no fold sink (weights-free "
                           "topology import cannot represent BatchNorm)");
      }
      nn::LayerSpec& conv = network.layers().back();
      CONDOR_ASSIGN_OR_RETURN(auto producers, single_producer());
      if ((!producers.empty() && producers.front() != conv.name) ||
          conv.kind != nn::LayerKind::kConvolution ||
          conv.activation != nn::Activation::kNone) {
        return unsupported("BatchNorm '" + name +
                           "': only folds into an immediately preceding "
                           "convolution are supported");
      }
      BatchNormFold fold;
      fold.conv = conv.name;
      fold.batch_norm = name;
      fold.epsilon = 1e-5F;
      if (const TextMessage* param = message->message("batch_norm_param")) {
        fold.epsilon = float_or(*param, "eps", 1e-5F);
      }
      fold.conv_had_bias = conv.has_bias;
      conv.has_bias = true;
      folds->push_back(std::move(fold));
      blob_layer[top.empty() ? conv.name : std::string(top)] = conv.name;
      CONDOR_LOG_DEBUG(kTag) << "folding BatchNorm '" << name << "' into '"
                             << conv.name << "'";
      continue;
    }

    if (type == "Scale") {
      // gamma/beta of the BatchNorm immediately before it.
      nn::LayerSpec& conv = network.layers().back();
      CONDOR_ASSIGN_OR_RETURN(auto producers, single_producer());
      const bool follows_fold = folds != nullptr && !folds->empty() &&
                                folds->back().conv == conv.name &&
                                folds->back().scale.empty();
      if (!follows_fold ||
          (!producers.empty() && producers.front() != conv.name)) {
        return unsupported("Scale '" + name +
                           "': only supported immediately after a folded "
                           "BatchNorm");
      }
      folds->back().scale = name;
      blob_layer[top.empty() ? conv.name : std::string(top)] = conv.name;
      continue;
    }

    if (type == "ReLU" || type == "Sigmoid" || type == "TanH") {
      CONDOR_ASSIGN_OR_RETURN(nn::Activation activation,
                              activation_for_layer(*message, type, name));
      // In-place activations (bottom == top) fuse into the producing layer —
      // this is how the generated PE applies them (inside the output loop).
      // Joins and upsamples apply activations in their passes too, so they
      // absorb in-place activations like the weighted layers do.
      const bool in_place =
          !bottoms.empty() && !tops.empty() && bottoms[0] == tops[0];
      nn::LayerSpec* producer =
          network.layers().empty() ? nullptr : &network.layers().back();
      CONDOR_ASSIGN_OR_RETURN(auto producers, single_producer());
      const bool feeds_previous =
          producers.empty() ||
          (producer != nullptr && producers.front() == producer->name);
      const bool fusable =
          producer != nullptr &&
          (producer->has_weights() || producer->is_join() ||
           producer->kind == nn::LayerKind::kUpsample);
      if (in_place && feeds_previous && fusable &&
          producer->activation == nn::Activation::kNone) {
        producer->activation = activation;
        blob_layer[std::string(tops[0])] = producer->name;
        CONDOR_LOG_DEBUG(kTag) << "fused activation '" << name << "' into '"
                               << producer->name << "'";
      } else {
        nn::LayerSpec layer;
        layer.kind = nn::LayerKind::kActivation;
        layer.name = std::move(name);
        layer.activation = activation;
        attach(std::move(layer), std::move(producers), top);
      }
      continue;
    }

    if (type == "Softmax" || type == "SoftmaxWithLoss") {
      nn::LayerSpec layer;
      layer.kind = nn::LayerKind::kSoftmax;
      layer.name = std::move(name);
      CONDOR_ASSIGN_OR_RETURN(auto producers, single_producer());
      attach(std::move(layer), std::move(producers), top);
      continue;
    }

    return unsupported("Caffe layer type '" + type + "' (layer '" + name +
                       "') is not supported by Condor");
  }

  CONDOR_RETURN_IF_ERROR(network.validate());
  return network;
}

namespace {

/// Bakes one BatchNorm(+Scale) pair into the conv's weights and bias.
/// Caffe stores running sums plus a scale factor in the BatchNorm blobs:
/// mean = blobs[0] / blobs[2], variance = blobs[1] / blobs[2].
Status apply_batch_norm_fold(const NetParameter& net, const BatchNormFold& fold,
                             std::size_t channels,
                             nn::LayerParameters& params) {
  const auto find_layer = [&](const std::string& name) {
    return std::find_if(
        net.layer.begin(), net.layer.end(),
        [&](const LayerParameter& l) { return l.name == name; });
  };
  const auto bn = find_layer(fold.batch_norm);
  if (bn == net.layer.end() || bn->blobs.size() < 3) {
    return invalid_input("caffemodel BatchNorm '" + fold.batch_norm +
                         "' must carry mean, variance and scale-factor blobs");
  }
  if (bn->blobs[0].data.size() != channels ||
      bn->blobs[1].data.size() != channels || bn->blobs[2].data.empty()) {
    return invalid_input("caffemodel BatchNorm '" + fold.batch_norm +
                         "': statistics do not match " +
                         std::to_string(channels) + " conv channels");
  }
  const float scale_factor = bn->blobs[2].data[0];
  const float inv_factor = scale_factor == 0.0F ? 0.0F : 1.0F / scale_factor;

  std::vector<float> gamma(channels, 1.0F);
  std::vector<float> beta(channels, 0.0F);
  if (!fold.scale.empty()) {
    const auto scale = find_layer(fold.scale);
    if (scale == net.layer.end() || scale->blobs.empty() ||
        scale->blobs[0].data.size() != channels) {
      return invalid_input("caffemodel Scale '" + fold.scale +
                           "' must carry a gamma blob of " +
                           std::to_string(channels) + " channels");
    }
    gamma.assign(scale->blobs[0].data.begin(), scale->blobs[0].data.end());
    if (scale->blobs.size() > 1) {
      if (scale->blobs[1].data.size() != channels) {
        return invalid_input("caffemodel Scale '" + fold.scale +
                             "': beta blob size mismatch");
      }
      beta.assign(scale->blobs[1].data.begin(), scale->blobs[1].data.end());
    }
  }

  // w' = w * gamma / sqrt(var + eps); b' = (b - mean) * that + beta.
  const std::size_t per_channel = params.weights.size() / channels;
  for (std::size_t oc = 0; oc < channels; ++oc) {
    const float mean = bn->blobs[0].data[oc] * inv_factor;
    const float variance = bn->blobs[1].data[oc] * inv_factor;
    const float factor = gamma[oc] / std::sqrt(variance + fold.epsilon);
    for (std::size_t i = 0; i < per_channel; ++i) {
      params.weights[oc * per_channel + i] *= factor;
    }
    params.bias[oc] = (params.bias[oc] - mean) * factor + beta[oc];
  }
  return Status::ok();
}

}  // namespace

Result<nn::WeightStore> weights_from_net_parameter(
    const NetParameter& net, const nn::Network& network,
    std::span<const BatchNormFold> folds) {
  CONDOR_ASSIGN_OR_RETURN(auto shapes, network.infer_shapes());
  nn::WeightStore store;
  const auto& layers = network.layers();
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (!layers[i].has_weights()) {
      continue;
    }
    const auto it =
        std::find_if(net.layer.begin(), net.layer.end(),
                     [&](const LayerParameter& l) { return l.name == layers[i].name; });
    if (it == net.layer.end()) {
      return not_found("caffemodel has no layer '" + layers[i].name + "'");
    }
    if (it->blobs.empty()) {
      return invalid_input("caffemodel layer '" + layers[i].name +
                           "' carries no weight blobs");
    }
    CONDOR_ASSIGN_OR_RETURN(auto expected,
                            nn::parameter_shapes(layers[i], shapes[i].input));

    // A conv that gained its bias through a BatchNorm fold has no bias
    // blob in the caffemodel; the fold synthesizes one.
    const auto fold = std::find_if(
        folds.begin(), folds.end(),
        [&](const BatchNormFold& f) { return f.conv == layers[i].name; });
    const bool bias_from_model =
        layers[i].has_bias && (fold == folds.end() || fold->conv_had_bias);

    nn::LayerParameters params;
    const BlobProto& weight_blob = it->blobs[0];
    if (weight_blob.data.size() != expected.weights.element_count()) {
      return invalid_input(strings::format(
          "layer '%s': weight blob has %zu values, expected %zu",
          layers[i].name.c_str(), weight_blob.data.size(),
          expected.weights.element_count()));
    }
    params.weights = Tensor(expected.weights, weight_blob.data);

    if (bias_from_model) {
      if (it->blobs.size() < 2) {
        return invalid_input("layer '" + layers[i].name +
                             "' declares a bias but caffemodel has no bias blob");
      }
      const BlobProto& bias_blob = it->blobs[1];
      if (bias_blob.data.size() != expected.bias.element_count()) {
        return invalid_input("layer '" + layers[i].name +
                             "': bias blob size mismatch");
      }
      params.bias = Tensor(expected.bias, bias_blob.data);
    } else if (layers[i].has_bias) {
      params.bias = Tensor(expected.bias);
    }

    if (fold != folds.end()) {
      CONDOR_RETURN_IF_ERROR(
          apply_batch_norm_fold(net, *fold, layers[i].num_output, params));
    }
    store.set(layers[i].name, std::move(params));
  }
  CONDOR_RETURN_IF_ERROR(store.validate_against(network));
  return store;
}

Result<nn::WeightStore> weights_from_caffemodel(
    std::span<const std::byte> data, const nn::Network& network,
    std::span<const BatchNormFold> folds) {
  CONDOR_ASSIGN_OR_RETURN(NetParameter net, decode_net_parameter(data));
  return weights_from_net_parameter(net, network, folds);
}

Result<CaffeModel> load_caffe_model(std::string_view prototxt_text,
                                    std::span<const std::byte> caffemodel_bytes) {
  std::vector<BatchNormFold> folds;
  CONDOR_ASSIGN_OR_RETURN(nn::Network network,
                          network_from_prototxt(prototxt_text, &folds));
  CONDOR_ASSIGN_OR_RETURN(
      nn::WeightStore weights,
      weights_from_caffemodel(caffemodel_bytes, network, folds));
  CONDOR_LOG_INFO(kTag) << "imported '" << network.name() << "' ("
                        << network.layer_count() << " layers, "
                        << network.join_count() << " joins)";
  return CaffeModel{std::move(network), std::move(weights)};
}

Result<CaffeModel> load_caffe_model_files(const std::string& prototxt_path,
                                          const std::string& caffemodel_path) {
  CONDOR_ASSIGN_OR_RETURN(std::string prototxt, read_text_file(prototxt_path));
  CONDOR_ASSIGN_OR_RETURN(auto caffemodel, read_file(caffemodel_path));
  return load_caffe_model(prototxt, caffemodel);
}

}  // namespace condor::caffe

// Caffe → Condor import: the "Input Analysis" step of the automation flow
// (paper §3.3 step 1). Translates a `prototxt` topology and a `caffemodel`
// weight blob into the Condor-internal Network IR and WeightStore.
//
// Supported Caffe layer types: Input, Convolution, Pooling (MAX/AVE),
// InnerProduct, ReLU, Sigmoid, TanH, Softmax. Training-only layers (Data,
// Accuracy, SoftmaxWithLoss, Dropout) are recognized and skipped/adapted:
// Data layers contribute the input shape, SoftmaxWithLoss degrades to plain
// Softmax, Dropout is an inference no-op. In-place activation layers
// (bottom == top) are fused into the producing layer, matching how the
// accelerator applies activations inside the PE.
#pragma once

#include "caffe/caffe_pb.hpp"
#include "caffe/text_format.hpp"
#include "common/status.hpp"
#include "nn/network.hpp"
#include "nn/weights.hpp"

namespace condor::caffe {

/// Parses a prototxt document into a Network (topology only).
Result<nn::Network> network_from_prototxt(std::string_view prototxt_text);

/// Extracts weights for `network` from a decoded NetParameter, matching
/// layers by name and validating blob shapes.
Result<nn::WeightStore> weights_from_net_parameter(const NetParameter& net,
                                                   const nn::Network& network);

/// Decodes `.caffemodel` bytes and extracts weights for `network`.
Result<nn::WeightStore> weights_from_caffemodel(std::span<const std::byte> data,
                                                const nn::Network& network);

/// Full frontend path: prototxt text + caffemodel bytes → (Network, weights).
struct CaffeModel {
  nn::Network network;
  nn::WeightStore weights;
};
Result<CaffeModel> load_caffe_model(std::string_view prototxt_text,
                                    std::span<const std::byte> caffemodel_bytes);

/// File-based convenience wrapper.
Result<CaffeModel> load_caffe_model_files(const std::string& prototxt_path,
                                          const std::string& caffemodel_path);

}  // namespace condor::caffe

// Caffe → Condor import: the "Input Analysis" step of the automation flow
// (paper §3.3 step 1). Translates a `prototxt` topology and a `caffemodel`
// weight blob into the Condor-internal Network IR and WeightStore.
//
// Supported Caffe layer types: Input, Convolution, Pooling (MAX/AVE),
// InnerProduct, ReLU (plain and negative_slope=0.1 leaky), Sigmoid, TanH,
// Softmax, Eltwise (SUM), Concat (axis 1), Upsample, and BatchNorm/Scale
// pairs folded into the preceding convolution. Training-only layers (Data,
// Accuracy, SoftmaxWithLoss, Dropout) are recognized and skipped/adapted:
// Data layers contribute the input shape, SoftmaxWithLoss degrades to plain
// Softmax, Dropout is an inference no-op. In-place activation layers
// (bottom == top) are fused into the producing layer, matching how the
// accelerator applies activations inside the PE. Layers whose `bottom`
// blobs are not the previous layer's `top` become explicit DAG edges
// (LayerSpec::inputs), so residual and route topologies import directly.
#pragma once

#include "caffe/caffe_pb.hpp"
#include "caffe/text_format.hpp"
#include "common/status.hpp"
#include "nn/network.hpp"
#include "nn/weights.hpp"

namespace condor::caffe {

/// A BatchNorm (+ optional Scale) pair the prototxt parse earmarked for
/// folding into a convolution's weights once the caffemodel statistics are
/// available: w' = w * gamma / sqrt(var + eps), b' = (b - mean) * that + beta.
struct BatchNormFold {
  std::string conv;        ///< convolution the pair folds into
  std::string batch_norm;  ///< caffemodel layer holding mean/var/scale-factor
  std::string scale;       ///< Scale layer with gamma/beta; empty when absent
  float epsilon = 1e-5F;
  bool conv_had_bias = false;  ///< caffemodel carries a bias blob for `conv`
};

/// Parses a prototxt document into a Network (topology only). BatchNorm
/// layers are folded into the preceding convolution; the pairs are recorded
/// in `folds` so the weight loader can apply the statistics. Passing null
/// rejects prototxts that contain BatchNorm.
Result<nn::Network> network_from_prototxt(std::string_view prototxt_text,
                                          std::vector<BatchNormFold>* folds =
                                              nullptr);

/// Extracts weights for `network` from a decoded NetParameter, matching
/// layers by name and validating blob shapes. `folds` (from
/// network_from_prototxt) bakes the listed BatchNorm statistics in.
Result<nn::WeightStore> weights_from_net_parameter(
    const NetParameter& net, const nn::Network& network,
    std::span<const BatchNormFold> folds = {});

/// Decodes `.caffemodel` bytes and extracts weights for `network`.
Result<nn::WeightStore> weights_from_caffemodel(
    std::span<const std::byte> data, const nn::Network& network,
    std::span<const BatchNormFold> folds = {});

/// Full frontend path: prototxt text + caffemodel bytes → (Network, weights).
struct CaffeModel {
  nn::Network network;
  nn::WeightStore weights;
};
Result<CaffeModel> load_caffe_model(std::string_view prototxt_text,
                                    std::span<const std::byte> caffemodel_bytes);

/// File-based convenience wrapper.
Result<CaffeModel> load_caffe_model_files(const std::string& prototxt_path,
                                          const std::string& caffemodel_path);

}  // namespace condor::caffe

#include "cli/cli.hpp"

#include <map>
#include <optional>

#include "caffe/export.hpp"
#include "cloud/afi.hpp"
#include "cloud/s3.hpp"
#include "common/byte_io.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "condor/flow.hpp"
#include "condor/report.hpp"
#include "hw/dse.hpp"
#include "nn/models.hpp"
#include "dataflow/executor.hpp"
#include "dataflow/executor_pool.hpp"
#include "nn/quantization.hpp"
#include "nn/reference.hpp"
#include "nn/weights.hpp"
#include "runtime/kernel_runner.hpp"
#include "serve/loadgen.hpp"
#include "sim/accel_sim.hpp"

namespace condor::cli {
namespace {

/// Minimal --flag value parser; flags may appear in any order.
class Args {
 public:
  Args(std::vector<std::string>::const_iterator begin,
       std::vector<std::string>::const_iterator end, std::ostream& err)
      : err_(err) {
    for (auto it = begin; it != end; ++it) {
      if (strings::starts_with(*it, "--")) {
        const std::string key = it->substr(2);
        if (it + 1 != end && !strings::starts_with(*(it + 1), "--")) {
          values_[key] = *++it;
        } else {
          values_[key] = "";  // boolean flag
        }
      } else {
        err_ << "unexpected argument '" << *it << "'\n";
        ok_ = false;
      }
    }
  }

  [[nodiscard]] bool ok() const noexcept { return ok_; }

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.count(key) != 0;
  }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    return it == values_.end() ? std::nullopt : std::make_optional(it->second);
  }

  [[nodiscard]] std::string get_or(const std::string& key,
                                   std::string fallback) const {
    return get(key).value_or(std::move(fallback));
  }

 private:
  std::map<std::string, std::string> values_;
  std::ostream& err_;
  bool ok_ = true;
};

int usage(std::ostream& err) {
  err << "usage: condor <command> [options]\n"
         "commands:\n"
         "  boards                               list supported boards\n"
         "  summary --model M                    show a model-zoo topology\n"
         "  build   --prototxt F --caffemodel F  run the automation flow\n"
         "        | --onnx F\n"
         "        | --network F --weights F\n"
         "          [--board ID] [--freq MHZ] [--out DIR] [--dse]\n"
         "          [--deploy onprem|cloud] [--bucket NAME] [--aws-root DIR]\n"
         "  dse     --model M [--features] [--max-fused K]\n"
         "                                       automated DSE (K > 1 searches\n"
         "                                       PE fusion clusterings too)\n"
         "  run     --xclbin F --weights F [--batch N] [--instances N]\n"
         "  fig5    --model M                    batch-size latency sweep\n"
         "  validate --model M [--batch N] [--parallel-out D]\n"
         "           [--data-type float32|fixed16|fixed8] [--instances N]\n"
         "                                       dataflow engine vs reference\n"
         "  serve-bench --model M [--rate RPS] [--requests N]\n"
         "           [--max-batch N] [--preferred-batch N] [--max-delay-ms MS]\n"
         "           [--instances N] [--data-type T] [--seed S]\n"
         "                                       dynamic batching vs serial\n"
         "  describe-afi --id I --aws-root DIR\n";
  return 2;
}

int cmd_boards(std::ostream& out) {
  out << strings::format("%-10s %-38s %10s %8s %6s %8s %6s\n", "id", "part",
                         "LUT", "DSP", "BRAM", "Fmax", "cloud");
  for (const hw::BoardSpec& board : hw::board_database()) {
    out << strings::format("%-10s %-38s %10llu %8llu %6llu %6.0fMHz %6s\n",
                           board.id.c_str(), board.part.c_str(),
                           (unsigned long long)board.capacity.luts,
                           (unsigned long long)board.capacity.dsps,
                           (unsigned long long)board.capacity.bram36,
                           board.max_frequency_mhz, board.cloud ? "yes" : "no");
  }
  return 0;
}

int cmd_summary(const Args& args, std::ostream& out, std::ostream& err) {
  const auto model_name = args.get("model");
  if (!model_name.has_value()) {
    err << "summary requires --model\n";
    return 2;
  }
  auto model = nn::make_model(*model_name);
  if (!model.is_ok()) {
    err << model.status().to_string() << "\n";
    return 1;
  }
  out << model.value().summary();
  out << strings::format(
      "parameters: %llu   FLOPs/image: %llu (features: %llu)\n",
      (unsigned long long)model.value().parameter_count().value(),
      (unsigned long long)model.value().total_flops().value(),
      (unsigned long long)model.value().feature_extraction_flops().value());
  return 0;
}

int cmd_build(const Args& args, std::ostream& out, std::ostream& err) {
  condorflow::FrontendInput input;
  if (args.has("prototxt") || args.has("caffemodel")) {
    const auto prototxt = args.get("prototxt");
    const auto caffemodel = args.get("caffemodel");
    if (!prototxt || !caffemodel) {
      err << "the Caffe frontend needs both --prototxt and --caffemodel\n";
      return 2;
    }
    auto text = read_text_file(*prototxt);
    auto bytes = read_file(*caffemodel);
    if (!text.is_ok() || !bytes.is_ok()) {
      err << (!text.is_ok() ? text.status() : bytes.status()).to_string() << "\n";
      return 1;
    }
    input.prototxt_text = std::move(text).value();
    input.caffemodel_bytes = std::move(bytes).value();
  } else if (args.has("onnx")) {
    auto bytes = read_file(*args.get("onnx"));
    if (!bytes.is_ok()) {
      err << bytes.status().to_string() << "\n";
      return 1;
    }
    input.onnx_bytes = std::move(bytes).value();
  } else if (args.has("network")) {
    const auto weights = args.get("weights");
    if (!weights) {
      err << "the Condor frontend needs --network and --weights\n";
      return 2;
    }
    auto text = read_text_file(*args.get("network"));
    auto bytes = read_file(*weights);
    if (!text.is_ok() || !bytes.is_ok()) {
      err << (!text.is_ok() ? text.status() : bytes.status()).to_string() << "\n";
      return 1;
    }
    input.network_json_text = std::move(text).value();
    input.weight_file_bytes = std::move(bytes).value();
  } else {
    err << "build needs an input source (--prototxt/--caffemodel, --onnx, or "
           "--network/--weights)\n";
    return 2;
  }
  input.board_id = args.get_or("board", "aws-f1");
  if (const auto freq = args.get("freq")) {
    input.target_frequency_mhz = std::strtod(freq->c_str(), nullptr);
  }

  condorflow::FlowOptions options;
  options.run_dse = args.has("dse");
  if (const auto dir = args.get("out")) {
    options.output_dir = *dir;
  }
  const std::string deploy = args.get_or("deploy", "onprem");

  std::optional<cloud::ObjectStore> store;
  std::optional<cloud::AfiService> afi;
  if (deploy == "cloud") {
    options.deployment = condorflow::Deployment::kCloud;
    options.s3_bucket = args.get_or("bucket", "condor-artifacts");
    store.emplace(args.get_or("aws-root", "/tmp/condor-aws"));
    afi.emplace(*store);
  } else if (deploy != "onprem") {
    err << "--deploy must be 'onprem' or 'cloud'\n";
    return 2;
  }

  auto flow = condorflow::Flow::run(input, options,
                                    store.has_value() ? &*store : nullptr,
                                    afi.has_value() ? &*afi : nullptr);
  if (!flow.is_ok()) {
    err << "flow failed: " << flow.status().to_string() << "\n";
    return 1;
  }
  out << hw::describe(flow.value().plan);
  out << flow.value().synthesis.to_string(flow.value().plan.board);
  auto report = condorflow::make_deployment_report(flow.value());
  if (report.is_ok()) {
    out << "\n" << condorflow::format_deployment_table({report.value()});
  }
  if (flow.value().afi.has_value()) {
    out << strings::format("\nAFI: %s (%s) staged in s3://%s\n",
                           flow.value().afi->afi_id.c_str(),
                           std::string(cloud::to_string(flow.value().afi->state)).c_str(),
                           options.s3_bucket.c_str());
  }
  if (options.output_dir.has_value()) {
    out << "artifacts written to " << *options.output_dir << "\n";
  }
  return 0;
}

int cmd_dse(const Args& args, std::ostream& out, std::ostream& err) {
  const auto model_name = args.get("model");
  if (!model_name.has_value()) {
    err << "dse requires --model\n";
    return 2;
  }
  auto model = nn::make_model(*model_name);
  if (!model.is_ok()) {
    err << model.status().to_string() << "\n";
    return 1;
  }
  nn::Network net = args.has("features")
                        ? model.value().feature_extraction_prefix()
                        : model.value();
  // Fusion-aware clustering search: --max-fused K enumerates fusing up to K
  // chained feature PEs onto one (1 = fixed clustering, the default).
  const std::size_t max_fused = static_cast<std::size_t>(
      std::strtoull(args.get_or("max-fused", "1").c_str(), nullptr, 10));
  if (max_fused == 0) {
    err << "--max-fused must be >= 1\n";
    return 2;
  }
  hw::DseOptions options;
  options.max_fused = max_fused;
  auto result = hw::explore(
      hw::with_default_annotations(std::move(net),
                                   args.get_or("board", "aws-f1"), 250.0),
      options);
  if (!result.is_ok()) {
    err << result.status().to_string() << "\n";
    return 1;
  }
  out << strings::format("evaluated %zu points (%zu feasible) over %zu "
                         "clustering(s)\n",
                         result.value().points_evaluated,
                         result.value().points_feasible,
                         result.value().clusterings_explored);
  for (std::size_t step = 0; step < result.value().trajectory.size(); ++step) {
    const hw::DsePoint& point = result.value().trajectory[step];
    out << strings::format("  step %2zu: %8.2f GFLOPS @ %3.0f MHz\n", step,
                           point.gflops(), point.achieved_mhz);
  }
  out << strings::format("best: %.2f GFLOPS @ %.0f MHz\n",
                         result.value().best.gflops(),
                         result.value().best.achieved_mhz);
  return 0;
}

int cmd_run(const Args& args, std::ostream& out, std::ostream& err) {
  const auto xclbin_path = args.get("xclbin");
  const auto weights_path = args.get("weights");
  if (!xclbin_path || !weights_path) {
    err << "run requires --xclbin and --weights\n";
    return 2;
  }
  auto xclbin = runtime::Xclbin::load(*xclbin_path);
  if (!xclbin.is_ok()) {
    err << xclbin.status().to_string() << "\n";
    return 1;
  }
  auto kernel = runtime::LoadedKernel::from_xclbin(xclbin.value());
  if (!kernel.is_ok()) {
    err << kernel.status().to_string() << "\n";
    return 1;
  }
  auto weight_bytes = read_file(*weights_path);
  if (!weight_bytes.is_ok()) {
    err << weight_bytes.status().to_string() << "\n";
    return 1;
  }
  // Replicated accelerator instances (one ExecutorPool under the kernel);
  // the batch is sharded dynamically and device time is the slowest replica.
  const std::size_t instances = static_cast<std::size_t>(
      std::strtoull(args.get_or("instances", "1").c_str(), nullptr, 10));
  if (instances == 0) {
    err << "--instances must be >= 1\n";
    return 2;
  }
  if (auto s = kernel.value().set_instances(instances); !s.is_ok()) {
    err << s.to_string() << "\n";
    return 1;
  }
  if (auto s = kernel.value().load_weights(weight_bytes.value()); !s.is_ok()) {
    err << s.to_string() << "\n";
    return 1;
  }
  const std::size_t batch =
      static_cast<std::size_t>(std::strtoull(args.get_or("batch", "16").c_str(),
                                             nullptr, 10));
  const Shape input_shape =
      kernel.value().plan().source.net.input_shape().value();
  Rng rng(123);
  std::vector<Tensor> inputs;
  for (std::size_t i = 0; i < batch; ++i) {
    Tensor image(input_shape);
    for (float& v : image.data()) {
      v = rng.uniform(0.0F, 1.0F);
    }
    inputs.push_back(std::move(image));
  }
  auto outputs = kernel.value().run(inputs);
  if (!outputs.is_ok()) {
    err << outputs.status().to_string() << "\n";
    return 1;
  }
  const runtime::KernelStats& stats = kernel.value().last_stats();
  out << strings::format(
      "%zu images in %.3f ms device time (%.1f img/s @ %.0f MHz)\n", batch,
      stats.simulated_seconds * 1e3, stats.images_per_second(batch),
      stats.clock_mhz);
  if (instances > 1) {
    const dataflow::PoolRunStats* shards = kernel.value().last_shard_stats();
    std::string census;
    for (const std::size_t images : shards->images_per_instance) {
      census += census.empty() ? strings::format("%zu", images)
                               : strings::format("+%zu", images);
    }
    out << strings::format("%zu instances (images per instance: %s)\n",
                           instances, census.c_str());
  }
  return 0;
}

int cmd_validate(const Args& args, std::ostream& out, std::ostream& err) {
  const auto model_name = args.get("model");
  if (!model_name.has_value()) {
    err << "validate requires --model\n";
    return 2;
  }
  auto model = nn::make_model(*model_name);
  if (!model.is_ok()) {
    err << model.status().to_string() << "\n";
    return 1;
  }
  const std::size_t batch = static_cast<std::size_t>(
      std::strtoull(args.get_or("batch", "4").c_str(), nullptr, 10));
  auto weights = nn::initialize_weights(model.value(), 1);
  if (!weights.is_ok()) {
    err << weights.status().to_string() << "\n";
    return 1;
  }
  // The oracle: the float golden reference for float32, the fixed-point
  // QuantizedEngine otherwise (QuantizedEngine delegates to the float
  // reference for float32, so one engine serves both).
  auto data_type = nn::parse_data_type(args.get_or("data-type", "float32"));
  if (!data_type.is_ok()) {
    err << data_type.status().to_string() << "\n";
    return 2;
  }
  auto engine = nn::QuantizedEngine::create(model.value(), weights.value(),
                                            data_type.value());
  // Uniform intra-layer unfolding degree, clamped per layer to its output
  // map count (a 10-output classifier caps at 10 lanes regardless of the
  // requested degree).
  const std::size_t parallel_out = static_cast<std::size_t>(
      std::strtoull(args.get_or("parallel-out", "1").c_str(), nullptr, 10));
  if (parallel_out == 0) {
    err << "--parallel-out must be >= 1\n";
    return 2;
  }
  hw::HwNetwork hw_net = hw::with_default_annotations(model.value());
  hw_net.hw.data_type = data_type.value();
  if (parallel_out > 1) {
    auto shapes = model.value().infer_shapes();
    if (!shapes.is_ok()) {
      err << shapes.status().to_string() << "\n";
      return 1;
    }
    for (std::size_t i = 1; i < hw_net.hw.layers.size(); ++i) {
      hw_net.hw.layers[i].parallel_out =
          std::min(parallel_out, shapes.value()[i].output[0]);
    }
  }
  auto plan = hw::plan_accelerator(hw_net);
  if (!plan.is_ok()) {
    err << plan.status().to_string() << "\n";
    return 1;
  }
  // Multi-instance validation proves the sharded pool stays bit-exact: the
  // same oracle comparison runs with the batch split across N replicas.
  const std::size_t instances = static_cast<std::size_t>(
      std::strtoull(args.get_or("instances", "1").c_str(), nullptr, 10));
  if (instances == 0) {
    err << "--instances must be >= 1\n";
    return 2;
  }
  auto pool = dataflow::ExecutorPool::create(plan.value(), weights.value(),
                                             instances);
  if (!pool.is_ok()) {
    err << pool.status().to_string() << "\n";
    return 1;
  }
  Rng rng(777);
  const Shape input_shape = model.value().input_shape().value();
  std::vector<Tensor> inputs;
  for (std::size_t i = 0; i < batch; ++i) {
    Tensor image(input_shape);
    for (float& v : image.data()) {
      v = rng.uniform(-1.0F, 1.0F);
    }
    inputs.push_back(std::move(image));
  }
  auto outputs = pool.value().run_batch(inputs);
  if (!outputs.is_ok()) {
    err << outputs.status().to_string() << "\n";
    return 1;
  }
  float worst = 0.0F;
  for (std::size_t i = 0; i < batch; ++i) {
    const Tensor expected = engine.value().forward(inputs[i]).value();
    worst = std::max(worst, max_abs_diff(outputs.value()[i], expected));
  }
  // Bit-exactness is expected at every data type: the fixed datapaths run
  // the same integer arithmetic in both engines.
  const bool fixed = nn::is_fixed_point(data_type.value());
  std::string degree =
      fixed ? strings::format("parallel_out=%zu, %s", parallel_out,
                              std::string(nn::to_string(data_type.value())).c_str())
            : strings::format("parallel_out=%zu", parallel_out);
  if (instances > 1) {
    degree += strings::format(", instances=%zu", instances);
  }
  out << strings::format(
      "dataflow engine (%s) vs %s on %zu images: "
      "max |diff| = %g (%s)\n",
      degree.c_str(), fixed ? "quantized reference" : "golden reference", batch,
      worst, worst == 0.0F ? "bit-exact PASS" : "FAIL");
  // Topology summary: how much of the network is DAG-shaped. Depth is the
  // longest producer->consumer path; a linear chain's depth equals its
  // layer count, so the gap between the two is the parallel width.
  const auto depth = model.value().dag_depth();
  if (!depth.is_ok()) {
    err << depth.status().to_string() << "\n";
    return 1;
  }
  out << strings::format("topology: %zu layers, %zu joins, DAG depth %zu\n",
                         model.value().layer_count(),
                         model.value().join_count(), depth.value());
  // Fusion summary: how the plan clusters layers onto PEs. "fused passes"
  // counts the passes beyond each PE's first (the ones the executor's
  // fused-pass locality keeps on chip); "max chain" is the longest fused
  // layer chain on one PE.
  std::size_t fused_passes = 0;
  std::size_t max_chain = 1;
  for (const hw::PePlan& pe : plan.value().pes) {
    fused_passes += pe.layer_indices.size() - 1;
    max_chain = std::max(max_chain, pe.layer_indices.size());
  }
  out << strings::format("PEs: %zu, fused passes: %zu, max chain: %zu\n",
                         plan.value().pes.size(), fused_passes, max_chain);
  const dataflow::RunStats& run_stats =
      pool.value().instance(0).last_run_stats();
  out << strings::format("KPN: %zu modules, %zu streams\n", run_stats.modules,
                         run_stats.streams);
  std::uint64_t fires = 0;
  std::uint64_t module_blocks = 0;
  for (const dataflow::ModuleRunStats& module : run_stats.module_stats) {
    fires += module.fires;
    module_blocks += module.blocked;
  }
  std::uint64_t blocked_reads = 0;
  std::uint64_t blocked_writes = 0;
  for (const dataflow::FifoStats& stream : run_stats.stream_stats) {
    blocked_reads += stream.blocked_reads;
    blocked_writes += stream.blocked_writes;
  }
  out << strings::format(
      "scheduler: %s, %zu workers, %llu fires, %llu suspensions "
      "(%llu read blocks, %llu write blocks)\n",
      std::string(run_stats.scheduler).c_str(), run_stats.workers,
      static_cast<unsigned long long>(fires),
      static_cast<unsigned long long>(module_blocks),
      static_cast<unsigned long long>(blocked_reads),
      static_cast<unsigned long long>(blocked_writes));
  out << strings::format(
      "weights streamed: %llu bytes (resident after the first run), "
      "images in flight (peak): %llu\n",
      static_cast<unsigned long long>(run_stats.weight_bytes_streamed),
      static_cast<unsigned long long>(run_stats.images_in_flight_hwm));
  const std::vector<dataflow::InstanceUtilization>& utilization =
      pool.value().utilization();
  for (std::size_t i = 0; i < utilization.size(); ++i) {
    out << strings::format(
        "instance %zu utilization: %llu images in %llu chunks, "
        "%.3f ms busy\n",
        i, static_cast<unsigned long long>(utilization[i].images),
        static_cast<unsigned long long>(utilization[i].chunks),
        utilization[i].busy_seconds * 1e3);
  }
  return worst == 0.0F ? 0 : 1;
}

int cmd_serve_bench(const Args& args, std::ostream& out, std::ostream& err) {
  const auto model_name = args.get("model");
  if (!model_name.has_value()) {
    err << "serve-bench requires --model\n";
    return 2;
  }
  auto model = nn::make_model(*model_name);
  if (!model.is_ok()) {
    err << model.status().to_string() << "\n";
    return 1;
  }
  auto data_type = nn::parse_data_type(args.get_or("data-type", "float32"));
  if (!data_type.is_ok()) {
    err << data_type.status().to_string() << "\n";
    return 2;
  }
  auto weights = nn::initialize_weights(model.value(), 1);
  if (!weights.is_ok()) {
    err << weights.status().to_string() << "\n";
    return 1;
  }
  hw::HwNetwork hw_net = hw::with_default_annotations(model.value());
  hw_net.hw.data_type = data_type.value();
  auto plan = hw::plan_accelerator(hw_net);
  if (!plan.is_ok()) {
    err << plan.status().to_string() << "\n";
    return 1;
  }
  const std::size_t instances = static_cast<std::size_t>(
      std::strtoull(args.get_or("instances", "4").c_str(), nullptr, 10));
  if (instances == 0) {
    err << "--instances must be >= 1\n";
    return 2;
  }
  auto pool = dataflow::ExecutorPool::create(plan.value(), weights.value(),
                                             instances);
  if (!pool.is_ok()) {
    err << pool.status().to_string() << "\n";
    return 1;
  }
  auto accel = serve::make_service_model(pool.value().plan());
  if (!accel.is_ok()) {
    err << accel.status().to_string() << "\n";
    return 1;
  }
  serve::LoadGenOptions options;
  options.rate_rps = std::strtod(args.get_or("rate", "0").c_str(), nullptr);
  options.requests = static_cast<std::size_t>(
      std::strtoull(args.get_or("requests", "512").c_str(), nullptr, 10));
  options.seed = std::strtoull(args.get_or("seed", "2024").c_str(), nullptr, 10);
  options.batcher.max_batch = static_cast<std::size_t>(
      std::strtoull(args.get_or("max-batch", "32").c_str(), nullptr, 10));
  options.batcher.preferred_batch = static_cast<std::size_t>(std::strtoull(
      args.get_or("preferred-batch", "0").c_str(), nullptr, 10));
  options.batcher.max_delay_seconds =
      std::strtod(args.get_or("max-delay-ms", "25").c_str(), nullptr) * 1e-3;
  auto report = serve::run_open_loop(pool.value(), accel.value(), options);
  if (!report.is_ok()) {
    err << report.status().to_string() << "\n";
    return 1;
  }
  const serve::LoadGenReport& r = report.value();
  out << strings::format(
      "%s (%s) on %zu instances, offered %.1f req/s, %zu requests "
      "(%zu completed, %zu rejected)\n",
      model.value().name().c_str(),
      std::string(nn::to_string(data_type.value())).c_str(), instances,
      r.offered_rps, r.requests, r.completed, r.rejected);
  out << strings::format(
      "  serial  per-request: %8.1f img/s   p50 %7.2f ms   p99 %7.2f ms\n",
      r.serial_images_per_second, r.serial_latency.p50_ms,
      r.serial_latency.p99_ms);
  out << strings::format(
      "  dynamic batching:    %8.1f img/s   p50 %7.2f ms   p99 %7.2f ms\n",
      r.images_per_second, r.latency.p50_ms, r.latency.p99_ms);
  out << strings::format(
      "  %zu batches (mean %.1f, largest %zu), speedup %.2fx\n", r.batches,
      r.mean_batch, r.largest_batch, r.speedup);
  out << strings::format(
      "  p99 bound: max_delay %.1f ms + batch service %.2f ms = %.2f ms (%s)\n",
      options.batcher.max_delay_seconds * 1e3,
      r.max_batch_service_seconds * 1e3, r.p99_bound_ms,
      r.p99_within_bound ? "met" : "VIOLATED");
  out << strings::format("  demux vs direct run_batch: %s\n",
                         r.bitexact_vs_direct ? "bit-exact" : "MISMATCH");
  return r.bitexact_vs_direct && r.p99_within_bound ? 0 : 1;
}

int cmd_fig5(const Args& args, std::ostream& out, std::ostream& err) {
  const auto model_name = args.get("model");
  if (!model_name.has_value()) {
    err << "fig5 requires --model\n";
    return 2;
  }
  auto model = nn::make_model(*model_name);
  if (!model.is_ok()) {
    err << model.status().to_string() << "\n";
    return 1;
  }
  hw::HwNetwork net = hw::with_default_annotations(
      model.value(), args.get_or("board", "aws-f1"), 200.0);
  auto point = hw::evaluate_design_point(net);
  if (!point.is_ok()) {
    err << point.status().to_string() << "\n";
    return 1;
  }
  const sim::AcceleratorSim accel =
      sim::build_accelerator_sim(point.value().performance);
  out << strings::format("%s @ %.0f MHz, %zu pipeline stages\n",
                         model.value().name().c_str(),
                         point.value().achieved_mhz, accel.stages.size());
  out << strings::format("%8s %16s\n", "batch", "mean ms/image");
  for (const std::size_t batch : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    auto bp = sim::simulate_batch(accel, batch);
    if (!bp.is_ok()) {
      err << bp.status().to_string() << "\n";
      return 1;
    }
    out << strings::format("%8zu %16.4f\n", batch, bp.value().mean_ms_per_image);
  }
  return 0;
}

int cmd_describe_afi(const Args& args, std::ostream& out, std::ostream& err) {
  const auto id = args.get("id");
  if (!id.has_value()) {
    err << "describe-afi requires --id\n";
    return 2;
  }
  cloud::ObjectStore store(args.get_or("aws-root", "/tmp/condor-aws"));
  cloud::AfiService service(store);
  auto record = service.describe_fpga_image(*id);
  if (!record.is_ok()) {
    err << record.status().to_string() << "\n";
    return 1;
  }
  out << strings::format("%s  %s  state=%s  source=s3://%s/%s\n",
                         record.value().afi_id.c_str(),
                         record.value().agfi_id.c_str(),
                         std::string(cloud::to_string(record.value().state)).c_str(),
                         record.value().source_bucket.c_str(),
                         record.value().source_key.c_str());
  return 0;
}

}  // namespace

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  if (args.empty()) {
    return usage(err);
  }
  const std::string& command = args.front();
  const Args parsed(args.begin() + 1, args.end(), err);
  if (!parsed.ok()) {
    return usage(err);
  }
  if (command == "boards") {
    return cmd_boards(out);
  }
  if (command == "summary") {
    return cmd_summary(parsed, out, err);
  }
  if (command == "build") {
    return cmd_build(parsed, out, err);
  }
  if (command == "dse") {
    return cmd_dse(parsed, out, err);
  }
  if (command == "run") {
    return cmd_run(parsed, out, err);
  }
  if (command == "fig5") {
    return cmd_fig5(parsed, out, err);
  }
  if (command == "validate") {
    return cmd_validate(parsed, out, err);
  }
  if (command == "serve-bench") {
    return cmd_serve_bench(parsed, out, err);
  }
  if (command == "describe-afi") {
    return cmd_describe_afi(parsed, out, err);
  }
  err << "unknown command '" << command << "'\n";
  return usage(err);
}

}  // namespace condor::cli

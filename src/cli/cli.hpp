// The `condor` command-line driver (the role of the original framework's
// Python entry point). Implemented as a library so the test suite can drive
// it directly; tools/condor_main.cpp wraps it in a binary.
//
// Subcommands:
//   boards                             list the board database
//   summary   --model M                print a model-zoo topology
//   build     <input source> [opts]    run the full automation flow
//   dse       --model M [--features]   automated design space exploration
//   run       --xclbin F --weights F   execute a batch on the (simulated)
//             [--batch N]              device and print timing
//   fig5      --model M                the Figure-5 batch-size sweep
//   validate  --model M [--batch N]    dataflow engine vs golden reference
//   describe-afi --id I --aws-root D   poll a simulated AFI
//
// Input sources for `build`:
//   --prototxt F --caffemodel F        Caffe frontend
//   --onnx F                           ONNX frontend
//   --network F --weights F            Condor-native frontend
// Options: --board ID --freq MHZ --out DIR --dse
//          --deploy onprem|cloud --bucket NAME --aws-root DIR
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace condor::cli {

/// Runs one invocation; output goes to `out`, errors to `err`.
/// Returns the process exit code (0 on success).
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

}  // namespace condor::cli

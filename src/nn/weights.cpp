#include "nn/weights.hpp"

#include <cmath>

#include "common/byte_io.hpp"
#include "common/strings.hpp"

namespace condor::nn {
namespace {

// "CWF1" — Condor Weight File, version 1.
constexpr std::uint32_t kMagic = 0x31465743;

void write_tensor(ByteWriter& out, const Tensor& tensor) {
  out.u32le(static_cast<std::uint32_t>(tensor.shape().rank()));
  for (const std::size_t dim : tensor.shape().dims()) {
    out.u64le(dim);
  }
  for (const float value : tensor.data()) {
    out.f32le(value);
  }
}

Result<Tensor> read_tensor(ByteReader& in) {
  CONDOR_ASSIGN_OR_RETURN(std::uint32_t rank, in.u32le());
  if (rank > 8) {
    return invalid_input("weight file: implausible tensor rank");
  }
  std::vector<std::size_t> dims(rank);
  for (auto& dim : dims) {
    CONDOR_ASSIGN_OR_RETURN(std::uint64_t extent, in.u64le());
    dim = static_cast<std::size_t>(extent);
  }
  Shape shape(std::move(dims));
  std::vector<float> data(shape.element_count());
  for (float& value : data) {
    CONDOR_ASSIGN_OR_RETURN(value, in.f32le());
  }
  return Tensor(std::move(shape), std::move(data));
}

}  // namespace

const LayerParameters* WeightStore::find(const std::string& layer) const {
  const auto it = params_.find(layer);
  return it == params_.end() ? nullptr : &it->second;
}

void WeightStore::set(std::string layer, LayerParameters params) {
  params_[std::move(layer)] = std::move(params);
}

Status WeightStore::validate_against(const Network& network) const {
  CONDOR_ASSIGN_OR_RETURN(auto shapes, network.infer_shapes());
  const auto& layers = network.layers();
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (!layers[i].has_weights()) {
      continue;
    }
    const LayerParameters* params = find(layers[i].name);
    if (params == nullptr) {
      return not_found("no weights for layer '" + layers[i].name + "'");
    }
    CONDOR_ASSIGN_OR_RETURN(auto expected,
                            parameter_shapes(layers[i], shapes[i].input));
    if (params->weights.shape() != expected.weights) {
      return invalid_input(strings::format(
          "layer '%s': weight shape %s, expected %s", layers[i].name.c_str(),
          params->weights.shape().to_string().c_str(),
          expected.weights.to_string().c_str()));
    }
    if (layers[i].has_bias) {
      if (params->bias.shape() != expected.bias) {
        return invalid_input(strings::format(
            "layer '%s': bias shape %s, expected %s", layers[i].name.c_str(),
            params->bias.shape().to_string().c_str(),
            expected.bias.to_string().c_str()));
      }
    } else if (!params->bias.empty()) {
      return invalid_input("layer '" + layers[i].name +
                           "' has a bias blob but declares has_bias=false");
    }
  }
  return Status::ok();
}

std::vector<std::byte> WeightStore::serialize() const {
  ByteWriter out;
  out.u32le(kMagic);
  out.u32le(static_cast<std::uint32_t>(params_.size()));
  for (const auto& [name, params] : params_) {
    ByteWriter entry;
    entry.u32le(static_cast<std::uint32_t>(name.size()));
    entry.string_bytes(name);
    write_tensor(entry, params.weights);
    entry.u8(params.bias.empty() ? 0 : 1);
    if (!params.bias.empty()) {
      write_tensor(entry, params.bias);
    }
    out.u64le(entry.size());
    out.u32le(crc32(entry.view()));
    out.bytes(entry.view());
  }
  return std::move(out).take();
}

Result<WeightStore> WeightStore::deserialize(std::span<const std::byte> data) {
  ByteReader in(data);
  CONDOR_ASSIGN_OR_RETURN(std::uint32_t magic, in.u32le());
  if (magic != kMagic) {
    return invalid_input("not a Condor weight file (bad magic)");
  }
  CONDOR_ASSIGN_OR_RETURN(std::uint32_t count, in.u32le());
  WeightStore store;
  for (std::uint32_t i = 0; i < count; ++i) {
    CONDOR_ASSIGN_OR_RETURN(std::uint64_t entry_size, in.u64le());
    CONDOR_ASSIGN_OR_RETURN(std::uint32_t expected_crc, in.u32le());
    CONDOR_ASSIGN_OR_RETURN(auto entry_bytes,
                            in.bytes(static_cast<std::size_t>(entry_size)));
    if (crc32(entry_bytes) != expected_crc) {
      return invalid_input(
          strings::format("weight file: CRC mismatch in entry %u", i));
    }
    ByteReader entry(entry_bytes);
    CONDOR_ASSIGN_OR_RETURN(std::uint32_t name_size, entry.u32le());
    CONDOR_ASSIGN_OR_RETURN(std::string name, entry.string_bytes(name_size));
    LayerParameters params;
    CONDOR_ASSIGN_OR_RETURN(params.weights, read_tensor(entry));
    CONDOR_ASSIGN_OR_RETURN(std::uint8_t has_bias, entry.u8());
    if (has_bias != 0) {
      CONDOR_ASSIGN_OR_RETURN(params.bias, read_tensor(entry));
    }
    store.set(std::move(name), std::move(params));
  }
  if (!in.at_end()) {
    return invalid_input("weight file: trailing bytes");
  }
  return store;
}

Status WeightStore::save(const std::string& path) const {
  const std::vector<std::byte> data = serialize();
  return write_file(path, data);
}

Result<WeightStore> WeightStore::load(const std::string& path) {
  CONDOR_ASSIGN_OR_RETURN(auto data, read_file(path));
  return deserialize(data);
}

Result<WeightStore> initialize_weights(const Network& network, std::uint64_t seed) {
  CONDOR_ASSIGN_OR_RETURN(auto shapes, network.infer_shapes());
  Rng rng(seed);
  WeightStore store;
  const auto& layers = network.layers();
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (!layers[i].has_weights()) {
      continue;
    }
    CONDOR_ASSIGN_OR_RETURN(auto param_shapes,
                            parameter_shapes(layers[i], shapes[i].input));
    // Glorot-uniform: limit = sqrt(6 / (fan_in + fan_out)).
    const std::size_t fan_out = layers[i].num_output;
    const std::size_t fan_in = param_shapes.weights.element_count() / fan_out;
    const float limit =
        std::sqrt(6.0F / static_cast<float>(fan_in + fan_out));
    LayerParameters params;
    params.weights = Tensor(param_shapes.weights);
    for (float& value : params.weights.data()) {
      value = rng.uniform(-limit, limit);
    }
    if (layers[i].has_bias) {
      params.bias = Tensor(param_shapes.bias);  // zeros
    }
    store.set(layers[i].name, std::move(params));
  }
  return store;
}

}  // namespace condor::nn

#include "nn/reference.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/strings.hpp"
#include "nn/kernels.hpp"

namespace condor::nn {
namespace {

/// Minimum multiply-accumulate count before a convolution is worth sharding
/// over output channels (below it the fork-join overhead dominates).
constexpr std::size_t kConvShardMacThreshold = 1 << 15;

}  // namespace

Result<Tensor> forward_convolution(const LayerSpec& layer, const Tensor& input,
                                   const LayerParameters& params,
                                   ThreadPool* pool) {
  if (input.shape().rank() != 3) {
    return invalid_input("convolution input must be CHW");
  }
  const std::size_t in_c = input.shape()[0];
  const std::size_t in_h = input.shape()[1];
  const std::size_t in_w = input.shape()[2];
  CONDOR_ASSIGN_OR_RETURN(
      std::size_t out_h,
      window_output_extent(in_h, layer.kernel_h, layer.stride, layer.pad));
  CONDOR_ASSIGN_OR_RETURN(
      std::size_t out_w,
      window_output_extent(in_w, layer.kernel_w, layer.stride, layer.pad));
  const std::size_t out_c = layer.num_output;

  if (params.weights.shape() !=
      Shape{out_c, in_c, layer.kernel_h, layer.kernel_w}) {
    return invalid_input("convolution '" + layer.name + "': weight shape mismatch");
  }

  // Zero-padded input frame: the microkernel then reads raw rows without
  // border logic. The explicit zero terms leave every accumulation chain's
  // value unchanged (x + 0*w == x), matching the skip-the-border schedule
  // and the dataflow engine's mux-inserted border alike.
  const std::size_t frame_h = in_h + 2 * layer.pad;
  const std::size_t frame_w = in_w + 2 * layer.pad;
  const Tensor* frame = &input;
  Tensor padded;
  if (layer.pad != 0) {
    padded = Tensor(Shape{in_c, frame_h, frame_w});
    for (std::size_t ic = 0; ic < in_c; ++ic) {
      for (std::size_t y = 0; y < in_h; ++y) {
        std::memcpy(&padded.at(ic, y + layer.pad, layer.pad),
                    input.raw() + (ic * in_h + y) * in_w, in_w * sizeof(float));
      }
    }
    frame = &padded;
  }

  const std::size_t tap_count = layer.kernel_h * layer.kernel_w;
  const std::vector<float> packed = kernels::pack_conv_weights(
      params.weights.data(), out_c, in_c, layer.kernel_h, layer.kernel_w);

  Tensor output(Shape{out_c, out_h, out_w});
  const std::size_t map_points = out_h * out_w;

  // Output-channel sharding: each shard owns a disjoint oc slice with its
  // own accumulator tile, so results are byte-identical at any shard count
  // (an output element's chain never leaves its shard). This gives batch=1
  // inference intra-image parallelism on multi-core hosts.
  std::size_t shards = 1;
  if (pool != nullptr && out_c > 1 &&
      map_points * in_c * tap_count * out_c >= kConvShardMacThreshold) {
    shards = std::min(out_c, pool->worker_count());
  }
  const std::size_t chunk = (out_c + shards - 1) / shards;

  const auto run_slice = [&](std::size_t shard) {
    const std::size_t oc0 = shard * chunk;
    const std::size_t oc1 = std::min(out_c, oc0 + chunk);
    if (oc0 >= oc1) {
      return;
    }
    const std::size_t width = oc1 - oc0;
    // Point-major accumulator tile (map point, oc) seeded with the bias:
    // the microkernel's innermost loop stays contiguous over oc.
    std::vector<float> acc(map_points * width);
    for (std::size_t point = 0; point < map_points; ++point) {
      for (std::size_t j = 0; j < width; ++j) {
        acc[point * width + j] = layer.has_bias ? params.bias[oc0 + j] : 0.0F;
      }
    }
    std::vector<const float*> taps(tap_count);
    for (std::size_t ic = 0; ic < in_c; ++ic) {
      const float* channel = frame->raw() + ic * frame_h * frame_w;
      const float* packed_ic = packed.data() + ic * tap_count * out_c + oc0;
      for (std::size_t oy = 0; oy < out_h; ++oy) {
        for (std::size_t ky = 0; ky < layer.kernel_h; ++ky) {
          for (std::size_t kx = 0; kx < layer.kernel_w; ++kx) {
            taps[ky * layer.kernel_w + kx] =
                channel + (oy * layer.stride + ky) * frame_w + kx;
          }
        }
        kernels::conv_accumulate_row(acc.data() + oy * out_w * width, width,
                                     out_w, taps.data(), tap_count,
                                     layer.stride, packed_ic, out_c);
      }
    }
    // Transpose the tile into the (oc, oy, ox) output, applying the
    // activation (each shard writes a disjoint contiguous output block).
    float* out_base = output.raw() + oc0 * map_points;
    for (std::size_t j = 0; j < width; ++j) {
      for (std::size_t point = 0; point < map_points; ++point) {
        out_base[j * map_points + point] =
            apply_activation(layer.activation, acc[point * width + j]);
      }
    }
  };
  if (shards == 1) {
    run_slice(0);
  } else {
    pool->parallel_shards(shards, run_slice);
  }
  return output;
}

Result<Tensor> forward_pooling(const LayerSpec& layer, const Tensor& input) {
  if (input.shape().rank() != 3) {
    return invalid_input("pooling input must be CHW");
  }
  if (layer.pad != 0) {
    // A zero border is not a neutral element for max pooling, so padding
    // cannot be lowered onto the shared windowed datapath. Reject instead
    // of silently computing the pad-0 result.
    return invalid_input("pooling '" + layer.name +
                         "' with padding is not supported");
  }
  const std::size_t channels = input.shape()[0];
  const std::size_t in_h = input.shape()[1];
  const std::size_t in_w = input.shape()[2];
  CONDOR_ASSIGN_OR_RETURN(
      std::size_t out_h,
      window_output_extent(in_h, layer.kernel_h, layer.stride, 0));
  CONDOR_ASSIGN_OR_RETURN(
      std::size_t out_w,
      window_output_extent(in_w, layer.kernel_w, layer.stride, 0));

  Tensor output(Shape{channels, out_h, out_w});
  const float window_size =
      static_cast<float>(layer.kernel_h * layer.kernel_w);
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      for (std::size_t ox = 0; ox < out_w; ++ox) {
        float acc = layer.pool_method == PoolMethod::kMax
                        ? -std::numeric_limits<float>::infinity()
                        : 0.0F;
        for (std::size_t ky = 0; ky < layer.kernel_h; ++ky) {
          for (std::size_t kx = 0; kx < layer.kernel_w; ++kx) {
            const float value =
                input.at(c, oy * layer.stride + ky, ox * layer.stride + kx);
            if (layer.pool_method == PoolMethod::kMax) {
              acc = std::max(acc, value);
            } else {
              acc += value;
            }
          }
        }
        if (layer.pool_method == PoolMethod::kAverage) {
          acc /= window_size;
        }
        output.at(c, oy, ox) = apply_activation(layer.activation, acc);
      }
    }
  }
  return output;
}

Result<Tensor> forward_inner_product(const LayerSpec& layer, const Tensor& input,
                                     const LayerParameters& params) {
  const std::size_t in_count = input.size();
  const std::size_t out_count = layer.num_output;
  if (params.weights.shape() != Shape{out_count, in_count}) {
    return invalid_input("inner product '" + layer.name +
                         "': weight shape mismatch");
  }
  Tensor output(Shape{out_count});
  const auto in = input.data();
  const auto weights = params.weights.data();
  for (std::size_t o = 0; o < out_count; ++o) {
    float acc = layer.has_bias ? params.bias[o] : 0.0F;
    const float* row = weights.data() + o * in_count;
    for (std::size_t i = 0; i < in_count; ++i) {
      acc += row[i] * in[i];
    }
    output[o] = apply_activation(layer.activation, acc);
  }
  return output;
}

Tensor forward_activation(Activation activation, const Tensor& input) {
  Tensor output = input;
  for (float& value : output.data()) {
    value = apply_activation(activation, value);
  }
  return output;
}

Result<Tensor> forward_eltwise_add(const LayerSpec& layer, const Tensor& a,
                                   const Tensor& b) {
  if (a.shape() != b.shape()) {
    return invalid_input("eltwise_add '" + layer.name +
                         "': input shapes disagree: " + a.shape().to_string() +
                         " vs " + b.shape().to_string());
  }
  Tensor output(a.shape());
  const auto va = a.data();
  const auto vb = b.data();
  const auto out = output.data();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = apply_activation(layer.activation, va[i] + vb[i]);
  }
  return output;
}

Result<Tensor> forward_concat(const LayerSpec& layer, const Tensor& a,
                              const Tensor& b) {
  if (a.shape().rank() != 3 || b.shape().rank() != 3 ||
      a.shape()[1] != b.shape()[1] || a.shape()[2] != b.shape()[2]) {
    return invalid_input("concat '" + layer.name +
                         "': input spatial extents disagree: " +
                         a.shape().to_string() + " vs " +
                         b.shape().to_string());
  }
  Tensor output(Shape{a.shape()[0] + b.shape()[0], a.shape()[1], a.shape()[2]});
  std::memcpy(output.raw(), a.raw(), a.size() * sizeof(float));
  std::memcpy(output.raw() + a.size(), b.raw(), b.size() * sizeof(float));
  if (layer.activation != Activation::kNone) {
    for (float& value : output.data()) {
      value = apply_activation(layer.activation, value);
    }
  }
  return output;
}

Result<Tensor> forward_upsample(const LayerSpec& layer, const Tensor& input) {
  if (input.shape().rank() != 3) {
    return invalid_input("upsample input must be CHW");
  }
  if (layer.stride == 0) {
    return invalid_input("upsample '" + layer.name +
                         "' must have a positive scale (stride)");
  }
  const std::size_t channels = input.shape()[0];
  const std::size_t in_h = input.shape()[1];
  const std::size_t in_w = input.shape()[2];
  const std::size_t scale = layer.stride;
  Tensor output(Shape{channels, in_h * scale, in_w * scale});
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t y = 0; y < in_h; ++y) {
      // Build one scaled row, then replicate it `scale` times.
      float* out_row = &output.at(c, y * scale, 0);
      for (std::size_t x = 0; x < in_w; ++x) {
        const float value =
            apply_activation(layer.activation, input.at(c, y, x));
        for (std::size_t sx = 0; sx < scale; ++sx) {
          out_row[x * scale + sx] = value;
        }
      }
      for (std::size_t sy = 1; sy < scale; ++sy) {
        std::memcpy(&output.at(c, y * scale + sy, 0), out_row,
                    in_w * scale * sizeof(float));
      }
    }
  }
  return output;
}

Tensor forward_softmax(const Tensor& input) {
  Tensor output = input;
  const auto view = output.data();
  // Standard max-shift for numerical stability; paper eq. (5).
  float max_value = -std::numeric_limits<float>::infinity();
  for (const float value : view) {
    max_value = std::max(max_value, value);
  }
  float sum = 0.0F;
  for (float& value : view) {
    value = std::exp(value - max_value);
    sum += value;
  }
  for (float& value : view) {
    value /= sum;
  }
  return output;
}

namespace {

/// Dispatches one layer of the topological DAG walk. `in0`/`in1` are the
/// resolved producer blobs (`in1` only for the two-input joins); `image` is
/// the network input consumed by the kInput layer.
Result<Tensor> forward_layer(const LayerSpec& layer, const WeightStore& weights,
                             const Tensor& image, const Tensor& in0,
                             const Tensor* in1, ThreadPool* pool) {
  switch (layer.kind) {
    case LayerKind::kInput:
      return image;  // pass-through: output is the declared input blob
    case LayerKind::kConvolution: {
      const LayerParameters* params = weights.find(layer.name);
      if (params == nullptr) {
        return not_found("no weights for '" + layer.name + "'");
      }
      return forward_convolution(layer, in0, *params, pool);
    }
    case LayerKind::kPooling:
      return forward_pooling(layer, in0);
    case LayerKind::kInnerProduct: {
      const LayerParameters* params = weights.find(layer.name);
      if (params == nullptr) {
        return not_found("no weights for '" + layer.name + "'");
      }
      return forward_inner_product(layer, in0, *params);
    }
    case LayerKind::kActivation:
      return forward_activation(layer.activation, in0);
    case LayerKind::kSoftmax:
      return forward_softmax(in0);
    case LayerKind::kEltwiseAdd:
      return forward_eltwise_add(layer, in0, *in1);
    case LayerKind::kConcat:
      return forward_concat(layer, in0, *in1);
    case LayerKind::kUpsample:
      return forward_upsample(layer, in0);
  }
  return internal_error("unhandled layer kind");
}

}  // namespace

Result<ReferenceEngine> ReferenceEngine::create(Network network,
                                                WeightStore weights) {
  CONDOR_RETURN_IF_ERROR(network.validate());
  CONDOR_RETURN_IF_ERROR(weights.validate_against(network));
  return ReferenceEngine(std::move(network), std::move(weights));
}

Result<std::vector<Tensor>> ReferenceEngine::forward_all(const Tensor& input,
                                                         ThreadPool* pool) const {
  CONDOR_ASSIGN_OR_RETURN(Shape expected, network_.input_shape());
  if (input.shape() != expected) {
    return invalid_input(strings::format(
        "input shape %s does not match network input %s",
        input.shape().to_string().c_str(), expected.to_string().c_str()));
  }
  CONDOR_ASSIGN_OR_RETURN(const auto order, network_.topological_order());
  std::vector<Tensor> outputs(network_.layer_count());
  for (std::size_t i : order) {
    const LayerSpec& layer = network_.layers()[i];
    CONDOR_ASSIGN_OR_RETURN(const auto prods, network_.producers(i));
    const Tensor& in0 = prods.empty() ? input : outputs[prods[0]];
    const Tensor* in1 = prods.size() > 1 ? &outputs[prods[1]] : nullptr;
    CONDOR_ASSIGN_OR_RETURN(
        outputs[i], forward_layer(layer, weights_, input, in0, in1, pool));
  }
  return outputs;
}

Result<Tensor> ReferenceEngine::forward(const Tensor& input,
                                        ThreadPool* pool) const {
  CONDOR_ASSIGN_OR_RETURN(Shape expected, network_.input_shape());
  if (input.shape() != expected) {
    return invalid_input(strings::format(
        "input shape %s does not match network input %s",
        input.shape().to_string().c_str(), expected.to_string().c_str()));
  }
  // Same DAG walk as forward_all, but with per-tensor liveness: a producer
  // blob is released as soon as its last consumer has fired, so peak memory
  // follows the width of the live DAG cut instead of the full layer list.
  CONDOR_ASSIGN_OR_RETURN(const auto order, network_.topological_order());
  CONDOR_ASSIGN_OR_RETURN(const auto consumer_table, network_.consumers());
  std::vector<std::size_t> remaining(network_.layer_count());
  for (std::size_t i = 0; i < remaining.size(); ++i) {
    remaining[i] = consumer_table[i].size();
  }
  std::vector<Tensor> outputs(network_.layer_count());
  for (std::size_t i : order) {
    const LayerSpec& layer = network_.layers()[i];
    CONDOR_ASSIGN_OR_RETURN(const auto prods, network_.producers(i));
    const Tensor& in0 = prods.empty() ? input : outputs[prods[0]];
    const Tensor* in1 = prods.size() > 1 ? &outputs[prods[1]] : nullptr;
    CONDOR_ASSIGN_OR_RETURN(
        outputs[i], forward_layer(layer, weights_, input, in0, in1, pool));
    for (std::size_t p : prods) {
      if (--remaining[p] == 0) {
        outputs[p] = Tensor();
      }
    }
  }
  // validate() guarantees the unique sink is the last declared layer.
  return std::move(outputs.back());
}

Result<std::vector<Tensor>> ReferenceEngine::forward_batch(
    const std::vector<Tensor>& inputs, ThreadPool& pool) const {
  std::vector<Tensor> outputs(inputs.size());
  std::vector<Status> statuses(inputs.size());
  // One task per image; inside each, the convolutions additionally shard
  // over output channels (parallel_shards is nested-safe), so a batch of 1
  // on a multi-core host still fills the pool.
  pool.parallel_for(inputs.size(), [&](std::size_t i) {
    auto result = forward(inputs[i], &pool);
    if (result.is_ok()) {
      outputs[i] = std::move(result).value();
    } else {
      statuses[i] = result.status();
    }
  });
  for (const Status& status : statuses) {
    if (!status.is_ok()) {
      return status;
    }
  }
  return outputs;
}

}  // namespace condor::nn

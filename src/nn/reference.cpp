#include "nn/reference.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/strings.hpp"

namespace condor::nn {

Result<Tensor> forward_convolution(const LayerSpec& layer, const Tensor& input,
                                   const LayerParameters& params) {
  if (input.shape().rank() != 3) {
    return invalid_input("convolution input must be CHW");
  }
  const std::size_t in_c = input.shape()[0];
  const std::size_t in_h = input.shape()[1];
  const std::size_t in_w = input.shape()[2];
  CONDOR_ASSIGN_OR_RETURN(
      std::size_t out_h,
      window_output_extent(in_h, layer.kernel_h, layer.stride, layer.pad));
  CONDOR_ASSIGN_OR_RETURN(
      std::size_t out_w,
      window_output_extent(in_w, layer.kernel_w, layer.stride, layer.pad));
  const std::size_t out_c = layer.num_output;

  if (params.weights.shape() !=
      Shape{out_c, in_c, layer.kernel_h, layer.kernel_w}) {
    return invalid_input("convolution '" + layer.name + "': weight shape mismatch");
  }

  Tensor output(Shape{out_c, out_h, out_w});
  // Accumulation order fixed as (input channel, kh, kw): the same order the
  // generated PE code uses, so float results match the simulator bit-exactly.
  for (std::size_t oc = 0; oc < out_c; ++oc) {
    const float bias = layer.has_bias ? params.bias[oc] : 0.0F;
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      for (std::size_t ox = 0; ox < out_w; ++ox) {
        float acc = bias;
        for (std::size_t ic = 0; ic < in_c; ++ic) {
          for (std::size_t ky = 0; ky < layer.kernel_h; ++ky) {
            const std::ptrdiff_t iy =
                static_cast<std::ptrdiff_t>(oy * layer.stride + ky) -
                static_cast<std::ptrdiff_t>(layer.pad);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(in_h)) {
              continue;  // zero padding contributes nothing
            }
            for (std::size_t kx = 0; kx < layer.kernel_w; ++kx) {
              const std::ptrdiff_t ix =
                  static_cast<std::ptrdiff_t>(ox * layer.stride + kx) -
                  static_cast<std::ptrdiff_t>(layer.pad);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(in_w)) {
                continue;
              }
              acc += params.weights.at4(oc, ic, ky, kx) *
                     input.at(ic, static_cast<std::size_t>(iy),
                              static_cast<std::size_t>(ix));
            }
          }
        }
        output.at(oc, oy, ox) = apply_activation(layer.activation, acc);
      }
    }
  }
  return output;
}

Result<Tensor> forward_pooling(const LayerSpec& layer, const Tensor& input) {
  if (input.shape().rank() != 3) {
    return invalid_input("pooling input must be CHW");
  }
  if (layer.pad != 0) {
    // A zero border is not a neutral element for max pooling, so padding
    // cannot be lowered onto the shared windowed datapath. Reject instead
    // of silently computing the pad-0 result.
    return invalid_input("pooling '" + layer.name +
                         "' with padding is not supported");
  }
  const std::size_t channels = input.shape()[0];
  const std::size_t in_h = input.shape()[1];
  const std::size_t in_w = input.shape()[2];
  CONDOR_ASSIGN_OR_RETURN(
      std::size_t out_h,
      window_output_extent(in_h, layer.kernel_h, layer.stride, 0));
  CONDOR_ASSIGN_OR_RETURN(
      std::size_t out_w,
      window_output_extent(in_w, layer.kernel_w, layer.stride, 0));

  Tensor output(Shape{channels, out_h, out_w});
  const float window_size =
      static_cast<float>(layer.kernel_h * layer.kernel_w);
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      for (std::size_t ox = 0; ox < out_w; ++ox) {
        float acc = layer.pool_method == PoolMethod::kMax
                        ? -std::numeric_limits<float>::infinity()
                        : 0.0F;
        for (std::size_t ky = 0; ky < layer.kernel_h; ++ky) {
          for (std::size_t kx = 0; kx < layer.kernel_w; ++kx) {
            const float value =
                input.at(c, oy * layer.stride + ky, ox * layer.stride + kx);
            if (layer.pool_method == PoolMethod::kMax) {
              acc = std::max(acc, value);
            } else {
              acc += value;
            }
          }
        }
        if (layer.pool_method == PoolMethod::kAverage) {
          acc /= window_size;
        }
        output.at(c, oy, ox) = apply_activation(layer.activation, acc);
      }
    }
  }
  return output;
}

Result<Tensor> forward_inner_product(const LayerSpec& layer, const Tensor& input,
                                     const LayerParameters& params) {
  const std::size_t in_count = input.size();
  const std::size_t out_count = layer.num_output;
  if (params.weights.shape() != Shape{out_count, in_count}) {
    return invalid_input("inner product '" + layer.name +
                         "': weight shape mismatch");
  }
  Tensor output(Shape{out_count});
  const auto in = input.data();
  const auto weights = params.weights.data();
  for (std::size_t o = 0; o < out_count; ++o) {
    float acc = layer.has_bias ? params.bias[o] : 0.0F;
    const float* row = weights.data() + o * in_count;
    for (std::size_t i = 0; i < in_count; ++i) {
      acc += row[i] * in[i];
    }
    output[o] = apply_activation(layer.activation, acc);
  }
  return output;
}

Tensor forward_activation(Activation activation, const Tensor& input) {
  Tensor output = input;
  for (float& value : output.data()) {
    value = apply_activation(activation, value);
  }
  return output;
}

Tensor forward_softmax(const Tensor& input) {
  Tensor output = input;
  const auto view = output.data();
  // Standard max-shift for numerical stability; paper eq. (5).
  float max_value = -std::numeric_limits<float>::infinity();
  for (const float value : view) {
    max_value = std::max(max_value, value);
  }
  float sum = 0.0F;
  for (float& value : view) {
    value = std::exp(value - max_value);
    sum += value;
  }
  for (float& value : view) {
    value /= sum;
  }
  return output;
}

Result<ReferenceEngine> ReferenceEngine::create(Network network,
                                                WeightStore weights) {
  CONDOR_RETURN_IF_ERROR(network.validate());
  CONDOR_RETURN_IF_ERROR(weights.validate_against(network));
  return ReferenceEngine(std::move(network), std::move(weights));
}

Result<std::vector<Tensor>> ReferenceEngine::forward_all(const Tensor& input) const {
  CONDOR_ASSIGN_OR_RETURN(Shape expected, network_.input_shape());
  if (input.shape() != expected) {
    return invalid_input(strings::format(
        "input shape %s does not match network input %s",
        input.shape().to_string().c_str(), expected.to_string().c_str()));
  }
  std::vector<Tensor> outputs;
  outputs.reserve(network_.layer_count());
  Tensor current = input;
  for (const LayerSpec& layer : network_.layers()) {
    switch (layer.kind) {
      case LayerKind::kInput:
        break;  // pass-through: output is the declared input blob
      case LayerKind::kConvolution: {
        const LayerParameters* params = weights_.find(layer.name);
        if (params == nullptr) {
          return not_found("no weights for '" + layer.name + "'");
        }
        CONDOR_ASSIGN_OR_RETURN(current,
                                forward_convolution(layer, current, *params));
        break;
      }
      case LayerKind::kPooling: {
        CONDOR_ASSIGN_OR_RETURN(current, forward_pooling(layer, current));
        break;
      }
      case LayerKind::kInnerProduct: {
        const LayerParameters* params = weights_.find(layer.name);
        if (params == nullptr) {
          return not_found("no weights for '" + layer.name + "'");
        }
        CONDOR_ASSIGN_OR_RETURN(current,
                                forward_inner_product(layer, current, *params));
        break;
      }
      case LayerKind::kActivation:
        current = forward_activation(layer.activation, current);
        break;
      case LayerKind::kSoftmax:
        current = forward_softmax(current);
        break;
    }
    outputs.push_back(current);
  }
  return outputs;
}

Result<Tensor> ReferenceEngine::forward(const Tensor& input) const {
  CONDOR_ASSIGN_OR_RETURN(auto outputs, forward_all(input));
  return outputs.back();
}

Result<std::vector<Tensor>> ReferenceEngine::forward_batch(
    const std::vector<Tensor>& inputs, ThreadPool& pool) const {
  std::vector<Tensor> outputs(inputs.size());
  std::vector<Status> statuses(inputs.size());
  pool.parallel_for(inputs.size(), [&](std::size_t i) {
    auto result = forward(inputs[i]);
    if (result.is_ok()) {
      outputs[i] = std::move(result).value();
    } else {
      statuses[i] = result.status();
    }
  });
  for (const Status& status : statuses) {
    if (!status.is_ok()) {
      return status;
    }
  }
  return outputs;
}

}  // namespace condor::nn

#include "nn/synthetic_digits.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace condor::nn {
namespace {

// Segment endpoints on a unit square (x0, y0, x1, y1). Classic 7-segment
// layout extended with two diagonals for more distinctive glyphs.
struct Segment {
  float x0, y0, x1, y1;
};

constexpr Segment kSegments[] = {
    {0.2F, 0.1F, 0.8F, 0.1F},  // 0: top
    {0.8F, 0.1F, 0.8F, 0.5F},  // 1: top-right
    {0.8F, 0.5F, 0.8F, 0.9F},  // 2: bottom-right
    {0.2F, 0.9F, 0.8F, 0.9F},  // 3: bottom
    {0.2F, 0.5F, 0.2F, 0.9F},  // 4: bottom-left
    {0.2F, 0.1F, 0.2F, 0.5F},  // 5: top-left
    {0.2F, 0.5F, 0.8F, 0.5F},  // 6: middle
    {0.8F, 0.1F, 0.2F, 0.9F},  // 7: descending diagonal
    {0.2F, 0.1F, 0.8F, 0.9F},  // 8: ascending-to-bottom diagonal
};

// Active segments per digit (7-segment convention; 7 uses the diagonal).
constexpr std::array<std::uint16_t, 10> kDigitMask = {
    0b0'0'0111111,  // 0
    0b0'0'0000110,  // 1
    0b0'0'1011011,  // 2
    0b0'0'1001111,  // 3
    0b0'0'1100110,  // 4
    0b0'0'1101101,  // 5
    0b0'0'1111101,  // 6
    0b0'1'0000001,  // 7: top bar + descending diagonal
    0b0'0'1111111,  // 8
    0b0'0'1101111,  // 9
};

float point_segment_distance(float px, float py, const Segment& seg) noexcept {
  const float dx = seg.x1 - seg.x0;
  const float dy = seg.y1 - seg.y0;
  const float len2 = dx * dx + dy * dy;
  float t = len2 > 0.0F ? ((px - seg.x0) * dx + (py - seg.y0) * dy) / len2 : 0.0F;
  t = std::clamp(t, 0.0F, 1.0F);
  const float cx = seg.x0 + t * dx;
  const float cy = seg.y0 + t * dy;
  return std::hypot(px - cx, py - cy);
}

}  // namespace

Tensor render_digit(int label, std::size_t size, Rng& rng, bool jitter,
                    float noise_stddev) {
  Tensor image(Shape{1, size, size});
  const std::uint16_t mask = kDigitMask[static_cast<std::size_t>(label % 10)];
  const float shift_x = jitter ? rng.uniform(-1.0F, 1.0F) / static_cast<float>(size) : 0.0F;
  const float shift_y = jitter ? rng.uniform(-1.0F, 1.0F) / static_cast<float>(size) : 0.0F;
  // Stroke half-width in normalized units; scales with resolution so 16x16
  // and 28x28 glyphs look alike.
  const float stroke = 1.2F / static_cast<float>(size);

  for (std::size_t y = 0; y < size; ++y) {
    for (std::size_t x = 0; x < size; ++x) {
      const float px = (static_cast<float>(x) + 0.5F) / static_cast<float>(size) + shift_x;
      const float py = (static_cast<float>(y) + 0.5F) / static_cast<float>(size) + shift_y;
      float intensity = 0.0F;
      for (std::size_t s = 0; s < std::size(kSegments); ++s) {
        if ((mask & (1U << s)) == 0) {
          continue;
        }
        const float distance = point_segment_distance(px, py, kSegments[s]);
        // Soft anti-aliased stroke.
        const float value = std::clamp(1.5F - distance / stroke, 0.0F, 1.0F);
        intensity = std::max(intensity, value);
      }
      if (noise_stddev > 0.0F) {
        intensity += rng.normal(0.0F, noise_stddev);
      }
      image.at(0, y, x) = std::clamp(intensity, 0.0F, 1.0F);
    }
  }
  return image;
}

std::vector<DigitSample> make_digit_dataset(std::size_t count, std::size_t size,
                                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<DigitSample> samples;
  samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    DigitSample sample;
    sample.label = static_cast<int>(i % 10);
    sample.image = render_digit(sample.label, size, rng);
    samples.push_back(std::move(sample));
  }
  return samples;
}

}  // namespace condor::nn

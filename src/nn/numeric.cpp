#include "nn/numeric.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace condor::nn {
namespace {

// Rounds a scaled value half away from zero in the double domain. Double
// holds every int32 code and every float input times 2^15 exactly, so the
// tie test itself is exact.
double round_half_away(double scaled) noexcept {
  return scaled >= 0.0 ? std::floor(scaled + 0.5) : std::ceil(scaled - 0.5);
}

}  // namespace

std::string_view to_string(DataType type) noexcept {
  switch (type) {
    case DataType::kFloat32:
      return "float32";
    case DataType::kFixed16:
      return "fixed16";
    case DataType::kFixed8:
      return "fixed8";
  }
  return "unknown";
}

Result<DataType> parse_data_type(std::string_view name) {
  if (name == "float32") return DataType::kFloat32;
  if (name == "fixed16") return DataType::kFixed16;
  if (name == "fixed8") return DataType::kFixed8;
  return invalid_input("unknown data type '" + std::string(name) +
                       "' (expected float32, fixed16 or fixed8)");
}

std::size_t bytes_per_element(DataType type) noexcept {
  switch (type) {
    case DataType::kFloat32:
      return 4;
    case DataType::kFixed16:
      return 2;
    case DataType::kFixed8:
      return 1;
  }
  return 4;
}

int total_bits(DataType type) noexcept {
  switch (type) {
    case DataType::kFloat32:
      return 32;
    case DataType::kFixed16:
      return 16;
    case DataType::kFixed8:
      return 8;
  }
  return 32;
}

bool is_fixed_point(DataType type) noexcept {
  return type != DataType::kFloat32;
}

float FixedPointFormat::resolution() const noexcept {
  return std::ldexp(1.0F, -frac_bits);
}

float FixedPointFormat::max_value() const noexcept {
  return static_cast<float>(std::ldexp(static_cast<double>(max_code()), -frac_bits));
}

std::int32_t FixedPointFormat::max_code() const noexcept {
  return static_cast<std::int32_t>((std::int64_t{1} << (total_bits - 1)) - 1);
}

std::int32_t FixedPointFormat::min_code() const noexcept {
  return static_cast<std::int32_t>(-(std::int64_t{1} << (total_bits - 1)));
}

std::int32_t quantize_code(float value, const FixedPointFormat& format) noexcept {
  const double scaled = std::ldexp(static_cast<double>(value), format.frac_bits);
  const double rounded = round_half_away(scaled);
  const double clamped =
      std::clamp(rounded, static_cast<double>(format.min_code()),
                 static_cast<double>(format.max_code()));
  return static_cast<std::int32_t>(clamped);
}

float dequantize_code(std::int64_t code, int frac_bits) noexcept {
  return static_cast<float>(std::ldexp(static_cast<double>(code), -frac_bits));
}

float quantize_value(float value, const FixedPointFormat& format) noexcept {
  return dequantize_code(quantize_code(value, format), format.frac_bits);
}

std::int64_t realign_code(std::int64_t code, int from_frac, int to_frac) noexcept {
  if (to_frac >= from_frac) {
    return code << (to_frac - from_frac);
  }
  // Losing bits: round half away from zero on the dropped fraction. The
  // magnitudes involved (weights/bias codes) fit double exactly.
  return static_cast<std::int64_t>(
      round_half_away(std::ldexp(static_cast<double>(code), to_frac - from_frac)));
}

FixedPointFormat choose_format(std::span<const float> values,
                               int total_bits) noexcept {
  float max_abs = 0.0F;
  for (float v : values) {
    max_abs = std::max(max_abs, std::abs(v));
  }
  FixedPointFormat format{total_bits, total_bits - 1};
  if (max_abs == 0.0F) {
    return format;  // all-fractional: zeros fit any placement
  }
  // Direct fit test: lower the binary point until the rounded max magnitude
  // no longer saturates. Starting all-fractional and walking down visits at
  // most total_bits placements; each test mirrors quantize_code exactly.
  const double max_code = static_cast<double>(format.max_code());
  while (format.frac_bits > 0 &&
         round_half_away(std::ldexp(static_cast<double>(max_abs),
                                    format.frac_bits)) > max_code) {
    --format.frac_bits;
  }
  return format;
}

FixedPointFormat quantize_tensor(Tensor& tensor, int total_bits) noexcept {
  const FixedPointFormat format = choose_format(tensor.data(), total_bits);
  for (float& v : tensor.data()) {
    v = quantize_value(v, format);
  }
  return format;
}

FixedPointFormat quantize_span(std::span<const float> values, int total_bits,
                               std::vector<std::int32_t>& codes) {
  const FixedPointFormat format = choose_format(values, total_bits);
  codes.resize(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    codes[i] = quantize_code(values[i], format);
  }
  return format;
}

}  // namespace condor::nn

// Runtime SIMD dispatch for the packed MAC microkernels (nn/kernels.hpp).
//
// The shared `conv_accumulate_row` / `inner_product_accumulate` kernels are
// implemented at three ISA levels:
//
//   scalar   the portable `acc[j] += w[j] * x` sweeps in kernels.cpp
//            (compiled -O3; the baseline-ISA auto-vectorized fallback)
//   avx2     explicit 256-bit register-blocked variants (kernels_simd_avx2.cpp,
//            compiled -mavx2 -mfma per file)
//   avx512   512-bit variants (kernels_simd_avx512.cpp, -mavx512f per file)
//
// One level is selected once at startup: the `CONDOR_SIMD` environment
// variable (`scalar`, `avx2` or `avx512`) when set, clamped to what the CPU
// and the build actually support (CPUID via __builtin_cpu_supports);
// otherwise the widest available level. Every caller of the kernels.hpp
// templates — the golden reference, the dataflow PEs, the benches — goes
// through this dispatch, so the whole stack switches together.
//
// Bit-exactness across levels: the vector variants vectorize ONLY across
// the independent output-channel `j` loop; each output element's
// accumulation chain (bias seed, then (ic, ky, kx)- or ascending-h-ordered
// multiply-then-add, one rounding per operation) is untouched. The SIMD
// translation units and the scalar fallback are compiled with
// -ffp-contract=off so no level fuses the multiply and the add into an FMA
// (a single-rounding contraction would break cross-level byte equality).
// Integer accumulation is exact at any order. kernel_dispatch_test proves
// byte equality of every compiled-in level against scalar, at the kernel
// and the full-executor level.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace condor::nn::kernels {

/// ISA level of the microkernel implementations, ordered by width.
enum class SimdLevel : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// Canonical lowercase name ("scalar", "avx2", "avx512").
std::string_view to_string(SimdLevel level) noexcept;

/// Inverse of to_string; returns false on unknown names.
bool parse_simd_level(std::string_view name, SimdLevel& out) noexcept;

/// Widest level that is both compiled into this binary and supported by
/// the executing CPU. kScalar is always available.
SimdLevel max_supported_simd_level() noexcept;

/// The level the kernels.hpp templates currently dispatch to. Resolved once
/// on first use: CONDOR_SIMD override (clamped to max_supported) when set,
/// otherwise max_supported.
SimdLevel active_simd_level() noexcept;

/// Redirects the dispatch to `level` (clamped to max_supported) and returns
/// the level actually installed. Test/bench hook for comparing levels
/// inside one process — production code never calls this; the environment
/// override exists for that.
SimdLevel set_active_simd_level_for_testing(SimdLevel level) noexcept;

/// Space-separated feature list of the executing CPU (e.g.
/// "sse2 sse4.2 avx avx2 fma avx512f"), recorded by the benches so
/// checked-in BENCH json stays interpretable across machines.
std::string cpu_feature_string();

/// Raw kernel signatures (mirroring the kernels.hpp templates).
template <typename T, typename Acc>
using ConvRowFn = void (*)(Acc* acc, std::size_t oc_count, std::size_t out_w,
                           const T* const* taps, std::size_t tap_count,
                           std::size_t x_stride, const T* packed,
                           std::size_t packed_stride);
template <typename T, typename Acc>
using InnerProductFn = void (*)(Acc* acc, std::size_t out_count, const T* x,
                                std::size_t in_count, const T* packed,
                                std::size_t packed_stride);

/// The kernel implementing `level`, or nullptr when that level is not
/// available (not compiled in, or the CPU lacks the ISA). Instantiated for
/// the three datapath combinations: (float, float), (int32, int64) and
/// (int32, int32). Tests iterate levels through these to exercise every
/// variant regardless of the active dispatch.
template <typename T, typename Acc>
ConvRowFn<T, Acc> conv_row_kernel(SimdLevel level) noexcept;
template <typename T, typename Acc>
InnerProductFn<T, Acc> inner_product_kernel(SimdLevel level) noexcept;

}  // namespace condor::nn::kernels

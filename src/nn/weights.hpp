// Weight storage, initialization and the Condor external weight file format.
//
// Paper §3.1.1: "Weights and biases are kept as external files and are loaded
// dynamically at runtime. This enables the update of the network ... without
// the need for re-synthesizing the accelerator." This module implements that
// external file format (a small sectioned binary with per-blob CRC) plus
// deterministic Xavier/Glorot initialization used to synthesize weights for
// topologies we do not train (the paper evaluates inference only).
#pragma once

#include <map>
#include <string>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "nn/network.hpp"
#include "tensor/tensor.hpp"

namespace condor::nn {

/// Parameters of one layer.
struct LayerParameters {
  Tensor weights;
  Tensor bias;  ///< empty when the layer has no bias
};

/// All parameters of a network, keyed by layer name.
class WeightStore {
 public:
  [[nodiscard]] bool contains(const std::string& layer) const {
    return params_.count(layer) != 0;
  }
  [[nodiscard]] const LayerParameters* find(const std::string& layer) const;
  void set(std::string layer, LayerParameters params);

  [[nodiscard]] std::size_t layer_count() const noexcept { return params_.size(); }
  [[nodiscard]] const std::map<std::string, LayerParameters>& all() const noexcept {
    return params_;
  }

  /// Verifies every weighted layer of `network` has parameters with the
  /// shapes required by parameter_shapes().
  [[nodiscard]] Status validate_against(const Network& network) const;

  /// Serializes to the Condor weight-file binary format.
  [[nodiscard]] std::vector<std::byte> serialize() const;
  static Result<WeightStore> deserialize(std::span<const std::byte> data);

  Status save(const std::string& path) const;
  static Result<WeightStore> load(const std::string& path);

 private:
  std::map<std::string, LayerParameters> params_;
};

/// Xavier/Glorot-uniform initialization for every weighted layer of
/// `network`; deterministic given `seed`. Biases start at zero.
Result<WeightStore> initialize_weights(const Network& network,
                                       std::uint64_t seed = 42);

}  // namespace condor::nn

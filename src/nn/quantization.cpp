#include "nn/quantization.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

namespace condor::nn {
namespace {

/// A fixed-point blob: integer codes plus the dynamic format they carry.
/// value[i] = codes[i] * 2^-frac_bits.
struct FixedBlob {
  Shape shape;
  std::vector<std::int32_t> codes;
  int frac_bits = 0;
};

/// Dequantizes, activates, and requantizes a finished layer output: the
/// canonical layer-boundary step of the fixed datapath. `raw` holds one
/// accumulator (or pooled code) per output element at scale `raw_frac`.
FixedBlob requantize_layer_output(Shape shape, std::span<const std::int64_t> raw,
                                  int raw_frac, Activation activation,
                                  int total_bits) {
  std::vector<float> values(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    values[i] = apply_activation(activation, dequantize_code(raw[i], raw_frac));
  }
  FixedBlob out;
  out.shape = std::move(shape);
  out.frac_bits = quantize_span(values, total_bits, out.codes).frac_bits;
  return out;
}

Result<FixedBlob> fixed_convolution(const LayerSpec& layer, const FixedBlob& in,
                                    const LayerParameters& params,
                                    int total_bits) {
  const std::size_t in_c = in.shape[0];
  const std::size_t in_h = in.shape[1];
  const std::size_t in_w = in.shape[2];
  CONDOR_ASSIGN_OR_RETURN(
      std::size_t out_h,
      window_output_extent(in_h, layer.kernel_h, layer.stride, layer.pad));
  CONDOR_ASSIGN_OR_RETURN(
      std::size_t out_w,
      window_output_extent(in_w, layer.kernel_w, layer.stride, layer.pad));
  const std::size_t out_c = layer.num_output;
  if (params.weights.shape() !=
      Shape{out_c, in_c, layer.kernel_h, layer.kernel_w}) {
    return invalid_input("convolution '" + layer.name + "': weight shape mismatch");
  }

  // Quantize the layer's parameters from the raw floats: one dynamic format
  // for the full weight blob, one for the bias — the same blobs the PEs see
  // on the weight stream, so the codes match by construction.
  std::vector<std::int32_t> wcodes;
  const FixedPointFormat wf =
      quantize_span(params.weights.data(), total_bits, wcodes);
  std::vector<std::int32_t> bcodes;
  FixedPointFormat bf{total_bits, total_bits - 1};
  if (layer.has_bias) {
    bf = quantize_span(params.bias.data(), total_bits, bcodes);
  }
  const int acc_frac = wf.frac_bits + in.frac_bits;

  // Zero-padded code frame — code 0 is exactly value 0, so the border is
  // neutral for the accumulation just as in the float engine.
  const std::size_t frame_h = in_h + 2 * layer.pad;
  const std::size_t frame_w = in_w + 2 * layer.pad;
  const std::int32_t* frame = in.codes.data();
  std::vector<std::int32_t> padded;
  if (layer.pad != 0) {
    padded.assign(in_c * frame_h * frame_w, 0);
    for (std::size_t ic = 0; ic < in_c; ++ic) {
      for (std::size_t y = 0; y < in_h; ++y) {
        std::memcpy(&padded[(ic * frame_h + y + layer.pad) * frame_w + layer.pad],
                    in.codes.data() + (ic * in_h + y) * in_w,
                    in_w * sizeof(std::int32_t));
      }
    }
    frame = padded.data();
  }

  // Integer accumulation is exact, so any iteration order yields the same
  // accumulator value — no need to mirror the float engine's schedule.
  std::vector<std::int64_t> acc(out_c * out_h * out_w);
  for (std::size_t oc = 0; oc < out_c; ++oc) {
    const std::int64_t seed =
        layer.has_bias ? realign_code(bcodes[oc], bf.frac_bits, acc_frac) : 0;
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      for (std::size_t ox = 0; ox < out_w; ++ox) {
        std::int64_t sum = seed;
        for (std::size_t ic = 0; ic < in_c; ++ic) {
          const std::int32_t* channel = frame + ic * frame_h * frame_w;
          const std::int32_t* wrow =
              wcodes.data() +
              (oc * in_c + ic) * layer.kernel_h * layer.kernel_w;
          for (std::size_t ky = 0; ky < layer.kernel_h; ++ky) {
            const std::int32_t* xrow =
                channel + (oy * layer.stride + ky) * frame_w + ox * layer.stride;
            for (std::size_t kx = 0; kx < layer.kernel_w; ++kx) {
              sum += static_cast<std::int64_t>(wrow[ky * layer.kernel_w + kx]) *
                     xrow[kx];
            }
          }
        }
        acc[(oc * out_h + oy) * out_w + ox] = sum;
      }
    }
  }
  return requantize_layer_output(Shape{out_c, out_h, out_w}, acc, acc_frac,
                                 layer.activation, total_bits);
}

Result<FixedBlob> fixed_pooling(const LayerSpec& layer, const FixedBlob& in,
                                int total_bits) {
  if (layer.pad != 0) {
    return invalid_input("pooling '" + layer.name +
                         "' with padding is not supported");
  }
  const std::size_t channels = in.shape[0];
  const std::size_t in_h = in.shape[1];
  const std::size_t in_w = in.shape[2];
  CONDOR_ASSIGN_OR_RETURN(
      std::size_t out_h,
      window_output_extent(in_h, layer.kernel_h, layer.stride, 0));
  CONDOR_ASSIGN_OR_RETURN(
      std::size_t out_w,
      window_output_extent(in_w, layer.kernel_w, layer.stride, 0));

  const bool is_max = layer.pool_method == PoolMethod::kMax;
  const float window_size = static_cast<float>(layer.kernel_h * layer.kernel_w);
  std::vector<float> values(channels * out_h * out_w);
  for (std::size_t c = 0; c < channels; ++c) {
    const std::int32_t* map = in.codes.data() + c * in_h * in_w;
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      for (std::size_t ox = 0; ox < out_w; ++ox) {
        // Dequantization is monotone, so max over codes is max over values;
        // the average sums codes exactly and divides once in float.
        std::int64_t acc = is_max ? std::numeric_limits<std::int64_t>::min() : 0;
        for (std::size_t ky = 0; ky < layer.kernel_h; ++ky) {
          const std::int32_t* row =
              map + (oy * layer.stride + ky) * in_w + ox * layer.stride;
          for (std::size_t kx = 0; kx < layer.kernel_w; ++kx) {
            acc = is_max ? std::max<std::int64_t>(acc, row[kx]) : acc + row[kx];
          }
        }
        float value = dequantize_code(acc, in.frac_bits);
        if (!is_max) {
          value /= window_size;
        }
        values[(c * out_h + oy) * out_w + ox] =
            apply_activation(layer.activation, value);
      }
    }
  }
  FixedBlob out;
  out.shape = Shape{channels, out_h, out_w};
  out.frac_bits = quantize_span(values, total_bits, out.codes).frac_bits;
  return out;
}

Result<FixedBlob> fixed_inner_product(const LayerSpec& layer, const FixedBlob& in,
                                      const LayerParameters& params,
                                      int total_bits) {
  const std::size_t in_count = in.codes.size();
  const std::size_t out_count = layer.num_output;
  if (params.weights.shape() != Shape{out_count, in_count}) {
    return invalid_input("inner product '" + layer.name +
                         "': weight shape mismatch");
  }
  std::vector<std::int32_t> wcodes;
  const FixedPointFormat wf =
      quantize_span(params.weights.data(), total_bits, wcodes);
  std::vector<std::int32_t> bcodes;
  FixedPointFormat bf{total_bits, total_bits - 1};
  if (layer.has_bias) {
    bf = quantize_span(params.bias.data(), total_bits, bcodes);
  }
  const int acc_frac = wf.frac_bits + in.frac_bits;

  std::vector<std::int64_t> acc(out_count);
  for (std::size_t o = 0; o < out_count; ++o) {
    std::int64_t sum =
        layer.has_bias ? realign_code(bcodes[o], bf.frac_bits, acc_frac) : 0;
    const std::int32_t* row = wcodes.data() + o * in_count;
    for (std::size_t i = 0; i < in_count; ++i) {
      sum += static_cast<std::int64_t>(row[i]) * in.codes[i];
    }
    acc[o] = sum;
  }
  return requantize_layer_output(Shape{out_count}, acc, acc_frac,
                                 layer.activation, total_bits);
}

FixedBlob fixed_activation(Activation activation, const FixedBlob& in,
                           int total_bits) {
  std::vector<float> values(in.codes.size());
  for (std::size_t i = 0; i < in.codes.size(); ++i) {
    values[i] =
        apply_activation(activation, dequantize_code(in.codes[i], in.frac_bits));
  }
  FixedBlob out;
  out.shape = in.shape;
  out.frac_bits = quantize_span(values, total_bits, out.codes).frac_bits;
  return out;
}

Result<FixedBlob> fixed_eltwise_add(const LayerSpec& layer, const FixedBlob& a,
                                    const FixedBlob& b, int total_bits) {
  if (a.shape != b.shape) {
    return invalid_input("eltwise_add '" + layer.name +
                         "': input shapes disagree");
  }
  // Realign both operands to the finer of the two dynamic formats — an
  // exact shift left in int64 — then add: the sum carries frac = max(fa,fb)
  // and feeds the canonical dequantize→activate→requantize boundary step.
  // The executor's JoinModule mirrors this arithmetic exactly.
  const int common = std::max(a.frac_bits, b.frac_bits);
  std::vector<std::int64_t> raw(a.codes.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    raw[i] = realign_code(a.codes[i], a.frac_bits, common) +
             realign_code(b.codes[i], b.frac_bits, common);
  }
  return requantize_layer_output(a.shape, raw, common, layer.activation,
                                 total_bits);
}

Result<FixedBlob> fixed_concat(const LayerSpec& layer, const FixedBlob& a,
                               const FixedBlob& b, int total_bits) {
  if (a.shape.rank() != 3 || b.shape.rank() != 3 || a.shape[1] != b.shape[1] ||
      a.shape[2] != b.shape[2]) {
    return invalid_input("concat '" + layer.name +
                         "': input spatial extents disagree");
  }
  // The operands carry different dynamic formats, so the joined blob is
  // rebuilt in value space and requantized with one fresh format.
  std::vector<float> values(a.codes.size() + b.codes.size());
  for (std::size_t i = 0; i < a.codes.size(); ++i) {
    values[i] = apply_activation(layer.activation,
                                 dequantize_code(a.codes[i], a.frac_bits));
  }
  for (std::size_t i = 0; i < b.codes.size(); ++i) {
    values[a.codes.size() + i] = apply_activation(
        layer.activation, dequantize_code(b.codes[i], b.frac_bits));
  }
  FixedBlob out;
  out.shape = Shape{a.shape[0] + b.shape[0], a.shape[1], a.shape[2]};
  out.frac_bits = quantize_span(values, total_bits, out.codes).frac_bits;
  return out;
}

FixedBlob fixed_upsample(const LayerSpec& layer, const FixedBlob& in,
                         int total_bits) {
  const std::size_t channels = in.shape[0];
  const std::size_t in_h = in.shape[1];
  const std::size_t in_w = in.shape[2];
  const std::size_t scale = layer.stride;
  std::vector<float> values(channels * in_h * scale * in_w * scale);
  const std::size_t out_w = in_w * scale;
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t y = 0; y < in_h; ++y) {
      for (std::size_t x = 0; x < in_w; ++x) {
        const float value = apply_activation(
            layer.activation,
            dequantize_code(in.codes[(c * in_h + y) * in_w + x], in.frac_bits));
        for (std::size_t sy = 0; sy < scale; ++sy) {
          float* row =
              values.data() + ((c * in_h + y) * scale + sy) * out_w + x * scale;
          for (std::size_t sx = 0; sx < scale; ++sx) {
            row[sx] = value;
          }
        }
      }
    }
  }
  FixedBlob out;
  out.shape = Shape{channels, in_h * scale, in_w * scale};
  out.frac_bits = quantize_span(values, total_bits, out.codes).frac_bits;
  return out;
}

Tensor dequantize_blob(const FixedBlob& blob) {
  Tensor out(blob.shape);
  const auto view = out.data();
  for (std::size_t i = 0; i < blob.codes.size(); ++i) {
    view[i] = dequantize_code(blob.codes[i], blob.frac_bits);
  }
  return out;
}

}  // namespace

Result<WeightStore> quantize_weights(const WeightStore& weights, DataType type) {
  if (type == DataType::kFloat32) {
    return weights;
  }
  const int bits = total_bits(type);
  WeightStore quantized;
  for (const auto& [name, params] : weights.all()) {
    LayerParameters out;
    out.weights = params.weights;
    quantize_tensor(out.weights, bits);
    if (!params.bias.empty()) {
      out.bias = params.bias;
      quantize_tensor(out.bias, bits);
    }
    quantized.set(name, std::move(out));
  }
  return quantized;
}

Result<QuantizedEngine> QuantizedEngine::create(Network network,
                                                WeightStore weights,
                                                DataType type) {
  CONDOR_ASSIGN_OR_RETURN(
      ReferenceEngine engine,
      ReferenceEngine::create(std::move(network), std::move(weights)));
  return QuantizedEngine(std::move(engine), type, total_bits(type));
}

Result<Tensor> QuantizedEngine::forward(const Tensor& input) const {
  if (type_ == DataType::kFloat32) {
    return engine_.forward(input);
  }
  // The integer datapath: quantize the image once, then carry codes along
  // the topologically sorted DAG, requantizing each output blob with a
  // fresh dynamic format (see nn/numeric.hpp for the conventions). Producer
  // blobs are released once their last consumer has fired.
  const Network& net = engine_.network();
  CONDOR_ASSIGN_OR_RETURN(const auto order, net.topological_order());
  CONDOR_ASSIGN_OR_RETURN(const auto consumer_table, net.consumers());
  std::vector<std::size_t> remaining(net.layer_count());
  for (std::size_t i = 0; i < remaining.size(); ++i) {
    remaining[i] = consumer_table[i].size();
  }
  FixedBlob image;
  image.shape = input.shape();
  image.frac_bits =
      quantize_span(input.data(), total_bits_, image.codes).frac_bits;
  std::vector<FixedBlob> blobs(net.layer_count());
  for (std::size_t i : order) {
    const LayerSpec& layer = net.layers()[i];
    CONDOR_ASSIGN_OR_RETURN(const auto prods, net.producers(i));
    const FixedBlob& in0 = prods.empty() ? image : blobs[prods[0]];
    switch (layer.kind) {
      case LayerKind::kInput:
        blobs[i] = image;
        break;
      case LayerKind::kConvolution: {
        const LayerParameters* params = engine_.weights().find(layer.name);
        if (params == nullptr) {
          return not_found("no weights for '" + layer.name + "'");
        }
        CONDOR_ASSIGN_OR_RETURN(
            blobs[i], fixed_convolution(layer, in0, *params, total_bits_));
        break;
      }
      case LayerKind::kPooling: {
        CONDOR_ASSIGN_OR_RETURN(blobs[i],
                                fixed_pooling(layer, in0, total_bits_));
        break;
      }
      case LayerKind::kInnerProduct: {
        const LayerParameters* params = engine_.weights().find(layer.name);
        if (params == nullptr) {
          return not_found("no weights for '" + layer.name + "'");
        }
        CONDOR_ASSIGN_OR_RETURN(
            blobs[i], fixed_inner_product(layer, in0, *params, total_bits_));
        break;
      }
      case LayerKind::kActivation:
        blobs[i] = fixed_activation(layer.activation, in0, total_bits_);
        break;
      case LayerKind::kSoftmax:
        // The normalization runs on the host in float (see the planner):
        // dequantize and finish in floating point, no requantization.
        // validate() pins softmax as the network's unique sink.
        return forward_softmax(dequantize_blob(in0));
      case LayerKind::kEltwiseAdd: {
        CONDOR_ASSIGN_OR_RETURN(
            blobs[i],
            fixed_eltwise_add(layer, in0, blobs[prods[1]], total_bits_));
        break;
      }
      case LayerKind::kConcat: {
        CONDOR_ASSIGN_OR_RETURN(
            blobs[i], fixed_concat(layer, in0, blobs[prods[1]], total_bits_));
        break;
      }
      case LayerKind::kUpsample:
        blobs[i] = fixed_upsample(layer, in0, total_bits_);
        break;
    }
    for (std::size_t p : prods) {
      if (--remaining[p] == 0) {
        blobs[p] = FixedBlob{};
      }
    }
  }
  return dequantize_blob(blobs.back());
}

QuantizationError compare_outputs(const Tensor& reference, const Tensor& quantized) {
  QuantizationError error;
  const auto ref = reference.data();
  const auto quant = quantized.data();
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const float diff = std::fabs(ref[i] - quant[i]);
    error.max_abs_error = std::max(error.max_abs_error, diff);
    error.mean_abs_error += diff;
  }
  if (!ref.empty()) {
    error.mean_abs_error /= static_cast<float>(ref.size());
  }
  error.argmax_match = argmax(reference) == argmax(quantized);
  return error;
}

}  // namespace condor::nn

#include "nn/quantization.hpp"

#include <algorithm>
#include <cmath>

namespace condor::nn {

std::string_view to_string(DataType type) noexcept {
  switch (type) {
    case DataType::kFloat32:
      return "float32";
    case DataType::kFixed16:
      return "fixed16";
    case DataType::kFixed8:
      return "fixed8";
  }
  return "?";
}

std::size_t bytes_per_element(DataType type) noexcept {
  switch (type) {
    case DataType::kFloat32:
      return 4;
    case DataType::kFixed16:
      return 2;
    case DataType::kFixed8:
      return 1;
  }
  return 4;
}

float FixedPointFormat::resolution() const noexcept {
  return std::ldexp(1.0F, -frac_bits);
}

float FixedPointFormat::max_value() const noexcept {
  // Largest positive code: 2^(total-1) - 1 steps of the resolution.
  return (std::ldexp(1.0F, total_bits - 1) - 1.0F) * resolution();
}

float quantize_value(float value, const FixedPointFormat& format) noexcept {
  const float scaled = std::ldexp(value, format.frac_bits);
  const float max_code = std::ldexp(1.0F, format.total_bits - 1) - 1.0F;
  const float min_code = -std::ldexp(1.0F, format.total_bits - 1);
  const float code = std::clamp(std::nearbyint(scaled), min_code, max_code);
  return std::ldexp(code, -format.frac_bits);
}

FixedPointFormat choose_format(std::span<const float> values,
                               int total_bits) noexcept {
  float max_abs = 0.0F;
  for (const float value : values) {
    max_abs = std::max(max_abs, std::fabs(value));
  }
  FixedPointFormat format;
  format.total_bits = total_bits;
  if (max_abs == 0.0F) {
    format.frac_bits = total_bits - 1;
    return format;
  }
  // Integer bits needed so that max_abs fits: ceil(log2(max_abs + 1ulp)).
  const int integer_bits =
      std::max(0, static_cast<int>(std::ceil(std::log2(max_abs + 1e-12F))));
  format.frac_bits = std::clamp(total_bits - 1 - integer_bits, 0, total_bits - 1);
  return format;
}

FixedPointFormat quantize_tensor(Tensor& tensor, int total_bits) noexcept {
  const FixedPointFormat format = choose_format(tensor.data(), total_bits);
  for (float& value : tensor.data()) {
    value = quantize_value(value, format);
  }
  return format;
}

Result<WeightStore> quantize_weights(const WeightStore& weights, DataType type) {
  if (type == DataType::kFloat32) {
    return weights;
  }
  const int total_bits = type == DataType::kFixed16 ? 16 : 8;
  WeightStore quantized;
  for (const auto& [name, params] : weights.all()) {
    LayerParameters out;
    out.weights = params.weights;
    quantize_tensor(out.weights, total_bits);
    if (!params.bias.empty()) {
      out.bias = params.bias;
      quantize_tensor(out.bias, total_bits);
    }
    quantized.set(name, std::move(out));
  }
  return quantized;
}

Result<QuantizedEngine> QuantizedEngine::create(Network network,
                                                WeightStore weights,
                                                DataType type) {
  CONDOR_ASSIGN_OR_RETURN(WeightStore quantized, quantize_weights(weights, type));
  CONDOR_ASSIGN_OR_RETURN(
      ReferenceEngine engine,
      ReferenceEngine::create(std::move(network), std::move(quantized)));
  const int total_bits = type == DataType::kFixed8 ? 8 : 16;
  return QuantizedEngine(std::move(engine), type, total_bits);
}

Result<Tensor> QuantizedEngine::forward(const Tensor& input) const {
  if (type_ == DataType::kFloat32) {
    return engine_.forward(input);
  }
  // Quantize the input, then every intermediate blob with its own dynamic
  // format — the software emulation of a fixed-point datapath with
  // per-layer scaling.
  Tensor current = input;
  quantize_tensor(current, total_bits_);
  const Network& net = engine_.network();
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    const LayerSpec& layer = net.layers()[i];
    switch (layer.kind) {
      case LayerKind::kInput:
        break;
      case LayerKind::kConvolution: {
        CONDOR_ASSIGN_OR_RETURN(
            current, forward_convolution(layer, current,
                                         *engine_.weights().find(layer.name)));
        quantize_tensor(current, total_bits_);
        break;
      }
      case LayerKind::kPooling: {
        CONDOR_ASSIGN_OR_RETURN(current, forward_pooling(layer, current));
        quantize_tensor(current, total_bits_);
        break;
      }
      case LayerKind::kInnerProduct: {
        CONDOR_ASSIGN_OR_RETURN(
            current, forward_inner_product(layer, current,
                                           *engine_.weights().find(layer.name)));
        quantize_tensor(current, total_bits_);
        break;
      }
      case LayerKind::kActivation:
        current = forward_activation(layer.activation, current);
        quantize_tensor(current, total_bits_);
        break;
      case LayerKind::kSoftmax:
        // The normalization runs on the host in float (see the planner).
        current = forward_softmax(current);
        break;
    }
  }
  return current;
}

QuantizationError compare_outputs(const Tensor& reference, const Tensor& quantized) {
  QuantizationError error;
  const auto ref = reference.data();
  const auto quant = quantized.data();
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const float diff = std::fabs(ref[i] - quant[i]);
    error.max_abs_error = std::max(error.max_abs_error, diff);
    error.mean_abs_error += diff;
  }
  if (!ref.empty()) {
    error.mean_abs_error /= static_cast<float>(ref.size());
  }
  error.argmax_match = argmax(reference) == argmax(quantized);
  return error;
}

}  // namespace condor::nn

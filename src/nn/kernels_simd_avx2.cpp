// AVX2 variants of the packed MAC microkernels. This translation unit is
// compiled with -mavx2 -mfma -ffp-contract=off (see src/nn/CMakeLists.txt):
// the ISA flags gate the intrinsics, contraction stays off so the float
// multiply-then-add keeps the scalar kernels' two-rounding semantics (FMA
// fusion would break cross-level byte equality). When the toolchain cannot
// target AVX2 (non-x86, missing flag support) the table getter returns
// nullptr and dispatch falls back to scalar.
#include "nn/kernels_simd_internal.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace condor::nn::kernels::detail {

#if defined(__AVX2__)
namespace {

/// float datapath: 8 lanes, multiply then add (two roundings, matching the
/// scalar chain exactly).
struct F32Avx2 {
  using Elem = float;
  using Acc = float;
  using AccVec = __m256;
  using XVec = __m256;
  static constexpr std::size_t kWidth = 8;
  static AccVec load_acc(const float* p) noexcept { return _mm256_loadu_ps(p); }
  static void store_acc(float* p, AccVec v) noexcept { _mm256_storeu_ps(p, v); }
  static XVec broadcast(float x) noexcept { return _mm256_set1_ps(x); }
  static AccVec load_weights(const float* p) noexcept {
    return _mm256_loadu_ps(p);
  }
  static AccVec mac(AccVec a, AccVec w, XVec x) noexcept {
    return _mm256_add_ps(a, _mm256_mul_ps(w, x));
  }
};

/// fixed16 datapath: int32 codes, widening 32x32->64 multiply
/// (_mm256_mul_epi32 sign-extends the low halves of each 64-bit lane — the
/// weights arrive sign-extended via cvtepi32_epi64, the broadcast code fits
/// int32), exact int64 accumulation. 4 lanes.
struct I64Avx2 {
  using Elem = std::int32_t;
  using Acc = std::int64_t;
  using AccVec = __m256i;
  using XVec = __m256i;
  static constexpr std::size_t kWidth = 4;
  static AccVec load_acc(const Acc* p) noexcept {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store_acc(Acc* p, AccVec v) noexcept {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static XVec broadcast(Elem x) noexcept { return _mm256_set1_epi64x(x); }
  static AccVec load_weights(const Elem* p) noexcept {
    return _mm256_cvtepi32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
  }
  static AccVec mac(AccVec a, AccVec w, XVec x) noexcept {
    return _mm256_add_epi64(a, _mm256_mul_epi32(w, x));
  }
};

/// fixed8 datapath: int32 codes and accumulators (8-bit products plus
/// blob-length sums provably fit int32), low-half multiply is exact. 8 lanes.
struct I32Avx2 {
  using Elem = std::int32_t;
  using Acc = std::int32_t;
  using AccVec = __m256i;
  using XVec = __m256i;
  static constexpr std::size_t kWidth = 8;
  static AccVec load_acc(const Acc* p) noexcept {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store_acc(Acc* p, AccVec v) noexcept {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static XVec broadcast(Elem x) noexcept { return _mm256_set1_epi32(x); }
  static AccVec load_weights(const Elem* p) noexcept {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static AccVec mac(AccVec a, AccVec w, XVec x) noexcept {
    return _mm256_add_epi32(a, _mm256_mullo_epi32(w, x));
  }
};

void conv_f32(float* acc, std::size_t oc_count, std::size_t out_w,
              const float* const* taps, std::size_t tap_count,
              std::size_t x_stride, const float* packed,
              std::size_t packed_stride) {
  conv_row_impl<F32Avx2>(acc, oc_count, out_w, taps, tap_count, x_stride,
                         packed, packed_stride);
}
void conv_i32_i64(std::int64_t* acc, std::size_t oc_count, std::size_t out_w,
                  const std::int32_t* const* taps, std::size_t tap_count,
                  std::size_t x_stride, const std::int32_t* packed,
                  std::size_t packed_stride) {
  conv_row_impl<I64Avx2>(acc, oc_count, out_w, taps, tap_count, x_stride,
                         packed, packed_stride);
}
void conv_i32_i32(std::int32_t* acc, std::size_t oc_count, std::size_t out_w,
                  const std::int32_t* const* taps, std::size_t tap_count,
                  std::size_t x_stride, const std::int32_t* packed,
                  std::size_t packed_stride) {
  conv_row_impl<I32Avx2>(acc, oc_count, out_w, taps, tap_count, x_stride,
                         packed, packed_stride);
}
void ip_f32(float* acc, std::size_t out_count, const float* x,
            std::size_t in_count, const float* packed,
            std::size_t packed_stride) {
  inner_product_impl<F32Avx2>(acc, out_count, x, in_count, packed,
                              packed_stride);
}
void ip_i32_i64(std::int64_t* acc, std::size_t out_count,
                const std::int32_t* x, std::size_t in_count,
                const std::int32_t* packed, std::size_t packed_stride) {
  inner_product_impl<I64Avx2>(acc, out_count, x, in_count, packed,
                              packed_stride);
}
void ip_i32_i32(std::int32_t* acc, std::size_t out_count,
                const std::int32_t* x, std::size_t in_count,
                const std::int32_t* packed, std::size_t packed_stride) {
  inner_product_impl<I32Avx2>(acc, out_count, x, in_count, packed,
                              packed_stride);
}

}  // namespace

const IsaKernels* avx2_kernels() noexcept {
  static const IsaKernels kTable = {
      &conv_f32, &conv_i32_i64, &conv_i32_i32,
      &ip_f32,   &ip_i32_i64,   &ip_i32_i32,
  };
  return &kTable;
}

#else  // !defined(__AVX2__)

const IsaKernels* avx2_kernels() noexcept { return nullptr; }

#endif

}  // namespace condor::nn::kernels::detail

// Fixed-point quantization study (extension).
//
// The paper's accelerator computes in single-precision float; contemporary
// work it cites (Qiu et al., FPGA'16 [14]) shows dynamic-precision fixed
// point cuts bandwidth and resources "with negligible impact on the
// resulting accuracy". This module provides the numerical side of that
// study: per-tensor dynamic Q-format selection, weight/activation
// quantization, and a quantized inference engine used by the quantization
// ablation bench to measure the accuracy cost on Condor's model zoo.
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "nn/network.hpp"
#include "nn/reference.hpp"
#include "nn/weights.hpp"

namespace condor::nn {

enum class DataType { kFloat32, kFixed16, kFixed8 };

std::string_view to_string(DataType type) noexcept;
std::size_t bytes_per_element(DataType type) noexcept;

/// A signed fixed-point format: `total_bits` including sign, `frac_bits`
/// fractional bits (Qm.n with m = total - 1 - n integer bits).
struct FixedPointFormat {
  int total_bits = 16;
  int frac_bits = 12;

  [[nodiscard]] float resolution() const noexcept;  ///< 2^-frac
  [[nodiscard]] float max_value() const noexcept;   ///< largest representable
};

/// Rounds to nearest representable value, saturating at the format range.
float quantize_value(float value, const FixedPointFormat& format) noexcept;

/// Dynamic-precision format selection (after [14]): places the binary point
/// so the largest magnitude in `values` just fits, maximizing fractional
/// resolution. Falls back to all-fractional for all-zero inputs.
FixedPointFormat choose_format(std::span<const float> values,
                               int total_bits) noexcept;

/// Quantizes every element in place with a per-tensor dynamic format.
FixedPointFormat quantize_tensor(Tensor& tensor, int total_bits) noexcept;

/// Quantizes all weights/biases of a store (per-blob dynamic formats).
Result<WeightStore> quantize_weights(const WeightStore& weights, DataType type);

/// Inference with quantized weights and per-layer activation quantization
/// (quantize-dequantize at every layer boundary — the standard software
/// emulation of a fixed-point datapath).
class QuantizedEngine {
 public:
  static Result<QuantizedEngine> create(Network network, WeightStore weights,
                                        DataType type);

  Result<Tensor> forward(const Tensor& input) const;

  [[nodiscard]] DataType data_type() const noexcept { return type_; }

 private:
  QuantizedEngine(ReferenceEngine engine, DataType type, int total_bits)
      : engine_(std::move(engine)), type_(type), total_bits_(total_bits) {}

  ReferenceEngine engine_;
  DataType type_;
  int total_bits_;
};

/// Error metrics between a float reference output and a quantized output.
struct QuantizationError {
  float max_abs_error = 0.0F;
  float mean_abs_error = 0.0F;
  bool argmax_match = true;
};
QuantizationError compare_outputs(const Tensor& reference, const Tensor& quantized);

}  // namespace condor::nn

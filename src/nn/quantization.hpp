// Fixed-point quantization study (extension).
//
// The paper's accelerator computes in single-precision float; contemporary
// work it cites (Qiu et al., FPGA'16 [14]) shows dynamic-precision fixed
// point cuts bandwidth and resources "with negligible impact on the
// resulting accuracy". The numeric primitives (formats, rounding,
// quantize/dequantize codes) live in nn/numeric.hpp and are shared with the
// dataflow engine; this module provides the layer-level golden reference:
// weight quantization and a fixed-point inference engine that executes the
// canonical integer datapath the accelerator PEs implement, used both by
// the quantization ablation bench (accuracy cost on the model zoo) and as
// the bit-exactness oracle for `condor validate --data-type fixed16|fixed8`.
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "nn/network.hpp"
#include "nn/numeric.hpp"
#include "nn/reference.hpp"
#include "nn/weights.hpp"

namespace condor::nn {

/// Quantizes all weights/biases of a store (per-blob dynamic formats,
/// weights and bias of a layer each get their own format).
Result<WeightStore> quantize_weights(const WeightStore& weights, DataType type);

/// Inference at a selected DataType.
///
/// float32 delegates to the float ReferenceEngine unchanged. The fixed
/// types execute the canonical integer datapath (see nn/numeric.hpp):
/// blobs are integer codes with a dynamic per-blob format, MACs accumulate
/// raw codes in a widened integer, and every layer boundary dequantizes,
/// applies the activation in float, and requantizes the whole blob with a
/// fresh format. The dataflow executor performs the identical operations
/// (integer sums are exact and order-independent; the float conversions
/// happen at the same points with the same inputs), so executor outputs are
/// bit-exact against this engine per DataType.
class QuantizedEngine {
 public:
  /// Keeps the RAW float weights; the fixed-point forward quantizes each
  /// layer's blob on the fly — exactly what the dataflow PEs do with the
  /// raw weight stream, so both sides derive identical codes and formats.
  static Result<QuantizedEngine> create(Network network, WeightStore weights,
                                        DataType type);

  Result<Tensor> forward(const Tensor& input) const;

  [[nodiscard]] DataType data_type() const noexcept { return type_; }

 private:
  QuantizedEngine(ReferenceEngine engine, DataType type, int total_bits)
      : engine_(std::move(engine)), type_(type), total_bits_(total_bits) {}

  ReferenceEngine engine_;
  DataType type_;
  int total_bits_;
};

/// Error metrics between a float reference output and a quantized output.
struct QuantizationError {
  float max_abs_error = 0.0F;
  float mean_abs_error = 0.0F;
  bool argmax_match = true;
};
QuantizationError compare_outputs(const Tensor& reference, const Tensor& quantized);

}  // namespace condor::nn

// Internals shared by the SIMD dispatch (kernels_simd.cpp), the scalar
// fallback (kernels.cpp) and the per-ISA translation units. Not part of the
// public kernel API.
//
// Each ISA translation unit exports one IsaKernels table of the six raw
// kernel entry points (3 type combinations x 2 kernels); the getters return
// nullptr when the variant is not compiled in (non-x86 target, or the
// compiler lacks the flag). The generic register-blocked loop bodies live
// here as templates over a Traits type so the AVX2 and AVX-512 units share
// one implementation, each instantiated under its own per-file ISA flags.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

#include "nn/kernels_simd.hpp"

namespace condor::nn::kernels::detail {

/// One ISA's kernel entry points.
struct IsaKernels {
  ConvRowFn<float, float> conv_f32 = nullptr;
  ConvRowFn<std::int32_t, std::int64_t> conv_i32_i64 = nullptr;
  ConvRowFn<std::int32_t, std::int32_t> conv_i32_i32 = nullptr;
  InnerProductFn<float, float> ip_f32 = nullptr;
  InnerProductFn<std::int32_t, std::int64_t> ip_i32_i64 = nullptr;
  InnerProductFn<std::int32_t, std::int32_t> ip_i32_i32 = nullptr;
};

/// The portable fallback (kernels.cpp). Always fully populated.
const IsaKernels& scalar_kernels() noexcept;
/// The vector variants; nullptr when not compiled in.
const IsaKernels* avx2_kernels() noexcept;
const IsaKernels* avx512_kernels() noexcept;

/// Table-entry selection per (T, Acc) instantiation.
template <typename T, typename Acc>
constexpr ConvRowFn<T, Acc> conv_entry(const IsaKernels& k) noexcept {
  if constexpr (std::is_same_v<T, float>) {
    return k.conv_f32;
  } else if constexpr (std::is_same_v<Acc, std::int64_t>) {
    return k.conv_i32_i64;
  } else {
    return k.conv_i32_i32;
  }
}
template <typename T, typename Acc>
constexpr InnerProductFn<T, Acc> inner_product_entry(
    const IsaKernels& k) noexcept {
  if constexpr (std::is_same_v<T, float>) {
    return k.ip_f32;
  } else if constexpr (std::is_same_v<Acc, std::int64_t>) {
    return k.ip_i32_i64;
  } else {
    return k.ip_i32_i32;
  }
}

/// The live dispatch target of the kernels.hpp templates. The pointers are
/// plain atomics so the testing hook can swap levels mid-process; loads on
/// the hot path are relaxed (any published table is internally consistent —
/// every level computes bit-identical results).
struct ActiveKernels {
  ActiveKernels() noexcept;  // resolves the startup level (env + CPUID)

  void install(SimdLevel level) noexcept;

  std::atomic<SimdLevel> level{SimdLevel::kScalar};
  std::atomic<ConvRowFn<float, float>> conv_f32{nullptr};
  std::atomic<ConvRowFn<std::int32_t, std::int64_t>> conv_i32_i64{nullptr};
  std::atomic<ConvRowFn<std::int32_t, std::int32_t>> conv_i32_i32{nullptr};
  std::atomic<InnerProductFn<float, float>> ip_f32{nullptr};
  std::atomic<InnerProductFn<std::int32_t, std::int64_t>> ip_i32_i64{nullptr};
  std::atomic<InnerProductFn<std::int32_t, std::int32_t>> ip_i32_i32{nullptr};
};

ActiveKernels& active_kernels() noexcept;

template <typename T, typename Acc>
inline ConvRowFn<T, Acc> active_conv_row() noexcept {
  ActiveKernels& a = active_kernels();
  if constexpr (std::is_same_v<T, float>) {
    return a.conv_f32.load(std::memory_order_relaxed);
  } else if constexpr (std::is_same_v<Acc, std::int64_t>) {
    return a.conv_i32_i64.load(std::memory_order_relaxed);
  } else {
    return a.conv_i32_i32.load(std::memory_order_relaxed);
  }
}
template <typename T, typename Acc>
inline InnerProductFn<T, Acc> active_inner_product() noexcept {
  ActiveKernels& a = active_kernels();
  if constexpr (std::is_same_v<T, float>) {
    return a.ip_f32.load(std::memory_order_relaxed);
  } else if constexpr (std::is_same_v<Acc, std::int64_t>) {
    return a.ip_i32_i64.load(std::memory_order_relaxed);
  } else {
    return a.ip_i32_i32.load(std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Generic register-blocked loop bodies, instantiated by each ISA unit with
// its own Traits (vector width, load/store/broadcast/mac on the ISA's
// registers). Traits::mac must multiply THEN add for the float combination
// (two roundings — see kernels_simd.hpp on contraction); integer math is
// exact either way.
//
// Vectorization is strictly across the output-channel index j. Per output
// element the adds arrive in ascending-t (respectively ascending-h) order,
// identical to the scalar kernels, so results are byte-equal by
// construction; only j-tail elements run the scalar sweep, which is the
// scalar kernel's own order.
// ---------------------------------------------------------------------------

template <typename Tr>
void conv_row_impl(typename Tr::Acc* acc, std::size_t oc_count,
                   std::size_t out_w, const typename Tr::Elem* const* taps,
                   std::size_t tap_count, std::size_t x_stride,
                   const typename Tr::Elem* packed,
                   std::size_t packed_stride) {
  using Acc = typename Tr::Acc;
  using Elem = typename Tr::Elem;
  using AccVec = typename Tr::AccVec;
  using XVec = typename Tr::XVec;
  constexpr std::size_t W = Tr::kWidth;

  std::size_t ox = 0;
  // 4-point x 2-vector register block: 8 accumulator registers stay live
  // across the whole tap loop, so each accumulator element moves through
  // memory once per (input channel, output row) instead of once per tap,
  // and each weight vector load is reused by 4 output points.
  for (; ox + 4 <= out_w; ox += 4) {
    Acc* const a0 = acc + (ox + 0) * oc_count;
    Acc* const a1 = acc + (ox + 1) * oc_count;
    Acc* const a2 = acc + (ox + 2) * oc_count;
    Acc* const a3 = acc + (ox + 3) * oc_count;
    std::size_t j = 0;
    for (; j + 2 * W <= oc_count; j += 2 * W) {
      AccVec v00 = Tr::load_acc(a0 + j);
      AccVec v01 = Tr::load_acc(a0 + j + W);
      AccVec v10 = Tr::load_acc(a1 + j);
      AccVec v11 = Tr::load_acc(a1 + j + W);
      AccVec v20 = Tr::load_acc(a2 + j);
      AccVec v21 = Tr::load_acc(a2 + j + W);
      AccVec v30 = Tr::load_acc(a3 + j);
      AccVec v31 = Tr::load_acc(a3 + j + W);
      for (std::size_t t = 0; t < tap_count; ++t) {
        const Elem* const row = taps[t];
        const Elem* const w = packed + t * packed_stride + j;
        const AccVec w0 = Tr::load_weights(w);
        const AccVec w1 = Tr::load_weights(w + W);
        const XVec x0 = Tr::broadcast(row[(ox + 0) * x_stride]);
        v00 = Tr::mac(v00, w0, x0);
        v01 = Tr::mac(v01, w1, x0);
        const XVec x1 = Tr::broadcast(row[(ox + 1) * x_stride]);
        v10 = Tr::mac(v10, w0, x1);
        v11 = Tr::mac(v11, w1, x1);
        const XVec x2 = Tr::broadcast(row[(ox + 2) * x_stride]);
        v20 = Tr::mac(v20, w0, x2);
        v21 = Tr::mac(v21, w1, x2);
        const XVec x3 = Tr::broadcast(row[(ox + 3) * x_stride]);
        v30 = Tr::mac(v30, w0, x3);
        v31 = Tr::mac(v31, w1, x3);
      }
      Tr::store_acc(a0 + j, v00);
      Tr::store_acc(a0 + j + W, v01);
      Tr::store_acc(a1 + j, v10);
      Tr::store_acc(a1 + j + W, v11);
      Tr::store_acc(a2 + j, v20);
      Tr::store_acc(a2 + j + W, v21);
      Tr::store_acc(a3 + j, v30);
      Tr::store_acc(a3 + j + W, v31);
    }
    for (; j + W <= oc_count; j += W) {
      AccVec v0 = Tr::load_acc(a0 + j);
      AccVec v1 = Tr::load_acc(a1 + j);
      AccVec v2 = Tr::load_acc(a2 + j);
      AccVec v3 = Tr::load_acc(a3 + j);
      for (std::size_t t = 0; t < tap_count; ++t) {
        const Elem* const row = taps[t];
        const AccVec w0 = Tr::load_weights(packed + t * packed_stride + j);
        v0 = Tr::mac(v0, w0, Tr::broadcast(row[(ox + 0) * x_stride]));
        v1 = Tr::mac(v1, w0, Tr::broadcast(row[(ox + 1) * x_stride]));
        v2 = Tr::mac(v2, w0, Tr::broadcast(row[(ox + 2) * x_stride]));
        v3 = Tr::mac(v3, w0, Tr::broadcast(row[(ox + 3) * x_stride]));
      }
      Tr::store_acc(a0 + j, v0);
      Tr::store_acc(a1 + j, v1);
      Tr::store_acc(a2 + j, v2);
      Tr::store_acc(a3 + j, v3);
    }
    if (j < oc_count) {
      for (std::size_t p = 0; p < 4; ++p) {
        Acc* const pa = acc + (ox + p) * oc_count;
        for (std::size_t t = 0; t < tap_count; ++t) {
          const Acc x = static_cast<Acc>(taps[t][(ox + p) * x_stride]);
          const Elem* const w = packed + t * packed_stride;
          for (std::size_t jj = j; jj < oc_count; ++jj) {
            pa[jj] += static_cast<Acc>(w[jj]) * x;
          }
        }
      }
    }
  }
  // Remaining output points one at a time.
  for (; ox < out_w; ++ox) {
    Acc* const pa = acc + ox * oc_count;
    std::size_t j = 0;
    for (; j + W <= oc_count; j += W) {
      AccVec v = Tr::load_acc(pa + j);
      for (std::size_t t = 0; t < tap_count; ++t) {
        v = Tr::mac(v, Tr::load_weights(packed + t * packed_stride + j),
                    Tr::broadcast(taps[t][ox * x_stride]));
      }
      Tr::store_acc(pa + j, v);
    }
    for (std::size_t t = 0; t < tap_count; ++t) {
      const Acc x = static_cast<Acc>(taps[t][ox * x_stride]);
      const Elem* const w = packed + t * packed_stride;
      for (std::size_t jj = j; jj < oc_count; ++jj) {
        pa[jj] += static_cast<Acc>(w[jj]) * x;
      }
    }
  }
}

template <typename Tr>
void inner_product_impl(typename Tr::Acc* acc, std::size_t out_count,
                        const typename Tr::Elem* x, std::size_t in_count,
                        const typename Tr::Elem* packed,
                        std::size_t packed_stride) {
  using Acc = typename Tr::Acc;
  using Elem = typename Tr::Elem;
  using AccVec = typename Tr::AccVec;
  using XVec = typename Tr::XVec;
  constexpr std::size_t W = Tr::kWidth;

  std::size_t j = 0;
  // 4-vector register block: the accumulators live in registers across the
  // whole input sweep; each x[h] broadcast feeds 4 weight-vector MACs.
  for (; j + 4 * W <= out_count; j += 4 * W) {
    AccVec v0 = Tr::load_acc(acc + j);
    AccVec v1 = Tr::load_acc(acc + j + W);
    AccVec v2 = Tr::load_acc(acc + j + 2 * W);
    AccVec v3 = Tr::load_acc(acc + j + 3 * W);
    for (std::size_t h = 0; h < in_count; ++h) {
      const XVec xv = Tr::broadcast(x[h]);
      const Elem* const w = packed + h * packed_stride + j;
      v0 = Tr::mac(v0, Tr::load_weights(w), xv);
      v1 = Tr::mac(v1, Tr::load_weights(w + W), xv);
      v2 = Tr::mac(v2, Tr::load_weights(w + 2 * W), xv);
      v3 = Tr::mac(v3, Tr::load_weights(w + 3 * W), xv);
    }
    Tr::store_acc(acc + j, v0);
    Tr::store_acc(acc + j + W, v1);
    Tr::store_acc(acc + j + 2 * W, v2);
    Tr::store_acc(acc + j + 3 * W, v3);
  }
  for (; j + W <= out_count; j += W) {
    AccVec v = Tr::load_acc(acc + j);
    for (std::size_t h = 0; h < in_count; ++h) {
      v = Tr::mac(v, Tr::load_weights(packed + h * packed_stride + j),
                  Tr::broadcast(x[h]));
    }
    Tr::store_acc(acc + j, v);
  }
  for (std::size_t h = 0; h < in_count; ++h) {
    const Acc xv = static_cast<Acc>(x[h]);
    const Elem* const w = packed + h * packed_stride;
    for (std::size_t jj = j; jj < out_count; ++jj) {
      acc[jj] += static_cast<Acc>(w[jj]) * xv;
    }
  }
}

}  // namespace condor::nn::kernels::detail

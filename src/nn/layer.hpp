// Layer descriptors for the CNN intermediate representation.
//
// Condor accelerates inference of sequential CNNs made of the layer types
// described in paper §2: convolution (with optional fused activation),
// sub-sampling/pooling (max or average), fully-connected (inner product),
// standalone activations, and a final softmax normalization. The descriptors
// are pure data — shape inference and execution live in network.cpp and
// reference.cpp.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "tensor/tensor.hpp"

namespace condor::nn {

enum class LayerKind {
  kInput,         ///< declares the input blob shape (CHW)
  kConvolution,   ///< 2-D convolution, paper eq. (1)-(2)
  kPooling,       ///< sub-sampling, paper eq. (3)
  kInnerProduct,  ///< fully-connected, paper eq. (4)
  kActivation,    ///< element-wise non-linearity as a standalone layer
  kSoftmax,       ///< normalization layer, paper eq. (5)
  kEltwiseAdd,    ///< element-wise sum of two producer blobs (residual join)
  kConcat,        ///< channel concatenation of two producer blobs (route join)
  kUpsample,      ///< nearest-neighbour spatial upsampling by `stride`
};

enum class Activation {
  kNone,
  kReLU,       ///< f(x) = max(0, x)
  kSigmoid,    ///< f(x) = 1 / (1 + e^-x)
  kTanH,       ///< f(x) = tanh(x)
  kLeakyReLU,  ///< f(x) = x > 0 ? x : kLeakyReluSlope * x
};

/// Negative-side slope of Activation::kLeakyReLU. Fixed at the Darknet/YOLO
/// convention; importers accept only models whose alpha matches.
inline constexpr float kLeakyReluSlope = 0.1F;

enum class PoolMethod { kMax, kAverage };

std::string_view to_string(LayerKind kind) noexcept;
std::string_view to_string(Activation activation) noexcept;
std::string_view to_string(PoolMethod method) noexcept;

/// Parses the lowercase identifiers produced by to_string (and the Caffe
/// spellings "MAX"/"AVE" for pool methods).
Result<LayerKind> parse_layer_kind(std::string_view text);
Result<Activation> parse_activation(std::string_view text);
Result<PoolMethod> parse_pool_method(std::string_view text);

/// One layer of the network DAG. Fields not applicable to a kind are
/// ignored (and validated to be at defaults by Network::validate()).
struct LayerSpec {
  std::string name;
  LayerKind kind = LayerKind::kConvolution;

  /// Names of the producer layers whose output blobs this layer consumes.
  /// Empty means "the previous layer in declaration order" — the implicit
  /// linear chain every pre-DAG network uses, kept byte-for-byte compatible.
  /// Join kinds (kEltwiseAdd, kConcat) name exactly two producers; every
  /// other kind names at most one.
  std::vector<std::string> inputs;

  // kInput
  std::size_t input_channels = 0;
  std::size_t input_height = 0;
  std::size_t input_width = 0;

  // kConvolution / kPooling common window geometry
  std::size_t kernel_h = 0;
  std::size_t kernel_w = 0;
  std::size_t stride = 1;
  std::size_t pad = 0;

  // kConvolution / kInnerProduct
  std::size_t num_output = 0;  ///< output feature maps / neurons
  bool has_bias = true;

  // kPooling
  PoolMethod pool_method = PoolMethod::kMax;

  // kConvolution fused activation, or the function of a kActivation layer.
  Activation activation = Activation::kNone;

  /// True for layers mapped to feature-extraction PEs (sliding window),
  /// i.e. convolution and pooling. Paper §3.2 clusters only like layers.
  [[nodiscard]] bool is_feature_extraction() const noexcept {
    return kind == LayerKind::kConvolution || kind == LayerKind::kPooling;
  }

  /// True for layers that own trainable parameters.
  [[nodiscard]] bool has_weights() const noexcept {
    return kind == LayerKind::kConvolution || kind == LayerKind::kInnerProduct;
  }

  /// True for the two-input join kinds that merge producer blobs.
  [[nodiscard]] bool is_join() const noexcept {
    return kind == LayerKind::kEltwiseAdd || kind == LayerKind::kConcat;
  }
};

/// Output spatial size of a sliding-window layer along one axis, paper
/// eq. (2) for convolutions (stride 1, pad 0 reduces to old - f + 1) and
/// eq. (3) for pooling. Returns an error when the window does not fit.
Result<std::size_t> window_output_extent(std::size_t input, std::size_t kernel,
                                         std::size_t stride, std::size_t pad);

/// Floating-point operation count of one layer given its input/output
/// shapes. MACs count as 2 FLOPs (multiply + add), matching the convention
/// used by the paper's GFLOPS figures; pooling counts one op per window
/// element (compare or add).
std::uint64_t layer_flops(const LayerSpec& layer, const Shape& input,
                          const Shape& output) noexcept;

/// Applies an activation function to a single value.
float apply_activation(Activation activation, float x) noexcept;

}  // namespace condor::nn

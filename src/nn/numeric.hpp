// Numeric datapath traits: the single definition of Condor's datapath
// scalar types and of the fixed-point arithmetic the quantized designs run.
//
// The paper's accelerator computes in single-precision float; the work it
// cites (Qiu et al., FPGA'16 [14]) shows dynamic-precision fixed point cuts
// bandwidth and resources with negligible accuracy impact. This header is
// the one mechanism shared by every consumer of that study:
//
//  * nn::QuantizedEngine (the software golden reference for fixed designs),
//  * the dataflow PE/datamover modules (the executable fixed datapath),
//  * the hw resource/timing presets (bytes per element),
//  * the HLS code generator and the CLI/report name strings.
//
// Both engines call the exact same quantize/round/realign helpers, so their
// rounding semantics are identical by construction — the foundation of the
// executor-vs-reference bit-exactness guarantee per DataType.
//
// Conventions of the fixed datapath (kFixed16 / kFixed8):
//  * every tensor ("blob") carries a dynamic per-blob Q-format chosen by
//    choose_format() — the binary point is placed so the largest magnitude
//    just fits, maximizing fractional resolution (after [14]);
//  * values are integer CODES: value = code * 2^-frac_bits. Codes of a
//    t-bit format lie in [-2^(t-1), 2^(t-1) - 1];
//  * rounding is round-half-away-from-zero, saturating at the format range;
//  * multiply-accumulate runs on raw codes in a widened integer
//    accumulator (int32 for fixed8, int64 for fixed16 — a 16x16-bit
//    product already needs 30 bits, so int32 would overflow mid-sum) at
//    scale weight_frac + input_frac; biases are realigned into that scale
//    (exact left shift, or half-away-rounded right shift);
//  * requantization happens at layer-pass boundaries over the full output
//    blob: dequantize the accumulator, apply the activation in float,
//    choose a fresh format for the blob, quantize back to codes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "tensor/tensor.hpp"

namespace condor::nn {

enum class DataType { kFloat32, kFixed16, kFixed8 };

/// Canonical name ("float32", "fixed16", "fixed8") — the single source for
/// reports, JSON, and the CLI.
std::string_view to_string(DataType type) noexcept;

/// Inverse of to_string. Fails with kInvalidInput on unknown names.
Result<DataType> parse_data_type(std::string_view name);

/// Bytes per datapath element (4 / 2 / 1) — the single width source the hw
/// resource presets derive their element_bytes from.
std::size_t bytes_per_element(DataType type) noexcept;

/// Code width of a fixed type (16 / 8); 32 for float32 (the IEEE word).
int total_bits(DataType type) noexcept;

/// True for the fixed-point members.
bool is_fixed_point(DataType type) noexcept;

/// A signed fixed-point format: `total_bits` including sign, `frac_bits`
/// fractional bits (Qm.n with m = total - 1 - n integer bits).
struct FixedPointFormat {
  int total_bits = 16;
  int frac_bits = 12;

  [[nodiscard]] float resolution() const noexcept;  ///< 2^-frac
  [[nodiscard]] float max_value() const noexcept;   ///< largest representable
  [[nodiscard]] std::int32_t max_code() const noexcept;  ///< 2^(t-1) - 1
  [[nodiscard]] std::int32_t min_code() const noexcept;  ///< -2^(t-1)
};

/// Quantizes `value` to an integer code: round-half-away-from-zero on the
/// scaled value, saturating at [min_code, max_code].
std::int32_t quantize_code(float value, const FixedPointFormat& format) noexcept;

/// code * 2^-frac_bits, computed in double and narrowed once (wide
/// accumulators exceed float's 24-bit mantissa; both engines must lose the
/// same bits at the same point).
float dequantize_code(std::int64_t code, int frac_bits) noexcept;

/// Rounds to the nearest representable value, saturating at the format
/// range (quantize_code followed by dequantize_code).
float quantize_value(float value, const FixedPointFormat& format) noexcept;

/// Re-scales a code from `from_frac` to `to_frac` fractional bits: exact
/// left shift when gaining bits, half-away-rounded right shift when losing
/// them. Used to align bias codes with the accumulator scale.
std::int64_t realign_code(std::int64_t code, int from_frac, int to_frac) noexcept;

/// Dynamic-precision format selection (after [14]): the largest frac_bits
/// such that every |value|, once rounded, still fits the code range — the
/// binary point sits as low as the data allows. All-zero inputs get the
/// all-fractional format. (Direct fit test, not a log2 estimate: magnitudes
/// just below a power of two, exact powers of two and denormal-scale inputs
/// all land on the maximal non-saturating format.)
FixedPointFormat choose_format(std::span<const float> values,
                               int total_bits) noexcept;

/// Quantizes every element in place with a per-tensor dynamic format.
FixedPointFormat quantize_tensor(Tensor& tensor, int total_bits) noexcept;

/// Quantizes a float span into integer codes with a freshly chosen dynamic
/// format (resizes `codes`). Returns the format.
FixedPointFormat quantize_span(std::span<const float> values, int total_bits,
                               std::vector<std::int32_t>& codes);

}  // namespace condor::nn

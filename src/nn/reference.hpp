// Golden CPU reference inference engine.
//
// This is the functional oracle against which the dataflow accelerator
// simulation is validated bit-for-bit (both use the same single-precision
// accumulation order: input channels outermost, then window rows, then
// window columns — matching the order the generated PE C code uses).
#pragma once

#include <vector>

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "nn/network.hpp"
#include "nn/weights.hpp"
#include "tensor/tensor.hpp"

namespace condor::nn {

/// Per-layer forward functions, exposed for targeted unit tests.
Result<Tensor> forward_convolution(const LayerSpec& layer, const Tensor& input,
                                   const LayerParameters& params);
Result<Tensor> forward_pooling(const LayerSpec& layer, const Tensor& input);
Result<Tensor> forward_inner_product(const LayerSpec& layer, const Tensor& input,
                                     const LayerParameters& params);
Tensor forward_activation(Activation activation, const Tensor& input);
Tensor forward_softmax(const Tensor& input);

class ReferenceEngine {
 public:
  /// Binds a validated network + weights. Fails if shapes do not line up.
  static Result<ReferenceEngine> create(Network network, WeightStore weights);

  /// Runs one image (CHW tensor matching the declared input shape) through
  /// the network, returning the final blob.
  Result<Tensor> forward(const Tensor& input) const;

  /// Like forward(), but also returns every intermediate blob (one entry per
  /// layer, entry i being the *output* of layer i). Used for per-layer
  /// comparison against the dataflow simulation.
  Result<std::vector<Tensor>> forward_all(const Tensor& input) const;

  /// Batch inference across a thread pool (one image per task).
  Result<std::vector<Tensor>> forward_batch(const std::vector<Tensor>& inputs,
                                            ThreadPool& pool) const;

  [[nodiscard]] const Network& network() const noexcept { return network_; }
  [[nodiscard]] const WeightStore& weights() const noexcept { return weights_; }

 private:
  ReferenceEngine(Network network, WeightStore weights)
      : network_(std::move(network)), weights_(std::move(weights)) {}

  Network network_;
  WeightStore weights_;
};

}  // namespace condor::nn

// Golden CPU reference inference engine.
//
// This is the functional oracle against which the dataflow accelerator
// simulation is validated bit-for-bit (both use the same single-precision
// accumulation order: input channels outermost, then window rows, then
// window columns — matching the order the generated PE C code uses).
#pragma once

#include <vector>

#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "nn/network.hpp"
#include "nn/weights.hpp"
#include "tensor/tensor.hpp"

namespace condor::nn {

/// Per-layer forward functions, exposed for targeted unit tests.
/// forward_convolution runs the packed OC-contiguous microkernel
/// (nn/kernels.hpp); with a pool it additionally shards the output channels
/// across workers — results are byte-identical at every shard count because
/// each output element's accumulation chain stays within one shard.
Result<Tensor> forward_convolution(const LayerSpec& layer, const Tensor& input,
                                   const LayerParameters& params,
                                   ThreadPool* pool = nullptr);
Result<Tensor> forward_pooling(const LayerSpec& layer, const Tensor& input);
Result<Tensor> forward_inner_product(const LayerSpec& layer, const Tensor& input,
                                     const LayerParameters& params);
Tensor forward_activation(Activation activation, const Tensor& input);
Tensor forward_softmax(const Tensor& input);

/// Two-input join layers of the DAG IR: element-wise sum of equal-shaped
/// blobs (residual shortcut) and channel concatenation of spatially equal
/// blobs (route layer). Both apply the layer's fused activation to the
/// joined result.
Result<Tensor> forward_eltwise_add(const LayerSpec& layer, const Tensor& a,
                                   const Tensor& b);
Result<Tensor> forward_concat(const LayerSpec& layer, const Tensor& a,
                              const Tensor& b);

/// Nearest-neighbour spatial upsampling by the layer's `stride` scale.
Result<Tensor> forward_upsample(const LayerSpec& layer, const Tensor& input);

class ReferenceEngine {
 public:
  /// Binds a validated network + weights. Fails if shapes do not line up.
  static Result<ReferenceEngine> create(Network network, WeightStore weights);

  /// Runs one image (CHW tensor matching the declared input shape) through
  /// the network DAG in topological order, returning the final blob. With a
  /// pool, convolutions shard their output channels across the workers
  /// (bit-exact at any degree). Intermediate blobs are released as soon as
  /// their last consumer fires, so peak memory follows the live DAG cut.
  Result<Tensor> forward(const Tensor& input, ThreadPool* pool = nullptr) const;

  /// Like forward(), but also returns every intermediate blob (one entry per
  /// layer, entry i being the *output* of layer i). Used for per-layer
  /// comparison against the dataflow simulation.
  Result<std::vector<Tensor>> forward_all(const Tensor& input,
                                          ThreadPool* pool = nullptr) const;

  /// Batch inference across a thread pool: one image per task, plus
  /// intra-image output-channel sharding of each convolution — so a batch
  /// of one still benefits from a multi-core host.
  Result<std::vector<Tensor>> forward_batch(const std::vector<Tensor>& inputs,
                                            ThreadPool& pool) const;

  [[nodiscard]] const Network& network() const noexcept { return network_; }
  [[nodiscard]] const WeightStore& weights() const noexcept { return weights_; }

 private:
  ReferenceEngine(Network network, WeightStore weights)
      : network_(std::move(network)), weights_(std::move(weights)) {}

  Network network_;
  WeightStore weights_;
};

}  // namespace condor::nn

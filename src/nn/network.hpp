// Network IR with shape inference and validation.
//
// Condor targets inference of feed-forward DAGs: the paper's sequential
// chains (features extraction followed by an MLP classifier, §2) plus
// residual/route topologies joined by eltwise-add and concat layers. Each
// layer names its producer blobs via LayerSpec::inputs; an empty list means
// "the previous layer", which keeps pre-DAG chain definitions byte-for-byte
// compatible. The Network owns the layer list and provides producer
// resolution, topological ordering, per-layer input/output shapes, FLOP
// accounting (used by the GFLOPS computations in the evaluation) and
// structural validation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "nn/layer.hpp"
#include "tensor/tensor.hpp"

namespace condor::nn {

/// Resolved geometry of one layer within a network. For two-input joins
/// `input` is the first producer's output blob; look up the second via
/// Network::producers().
struct LayerShapes {
  Shape input;   ///< CHW for feature extraction, flat (N) for classifier
  Shape output;
};

class Network {
 public:
  Network() = default;
  explicit Network(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Appends a layer. The first layer must be kInput.
  void add(LayerSpec layer) { layers_.push_back(std::move(layer)); }

  [[nodiscard]] const std::vector<LayerSpec>& layers() const noexcept {
    return layers_;
  }
  [[nodiscard]] std::vector<LayerSpec>& layers() noexcept { return layers_; }
  [[nodiscard]] std::size_t layer_count() const noexcept { return layers_.size(); }

  /// Finds a layer by name, or nullptr.
  [[nodiscard]] const LayerSpec* find_layer(std::string_view name) const noexcept;

  /// Index of the named layer, or an error when no layer has that name.
  [[nodiscard]] Result<std::size_t> layer_index(std::string_view name) const;

  /// Producer layer indices of layer `index`, with the implicit-chain rule
  /// applied: an empty `inputs` list on a non-input layer resolves to the
  /// previous layer in declaration order. Errors on unknown names and
  /// self-references.
  [[nodiscard]] Result<std::vector<std::size_t>> producers(
      std::size_t index) const;

  /// Consumer indices for every layer — the inverse of producers().
  [[nodiscard]] Result<std::vector<std::vector<std::size_t>>> consumers() const;

  /// Kahn topological order over the producer edges. Ready layers are
  /// emitted in ascending declaration index, so an already-sorted list (any
  /// linear chain in particular) yields the identity permutation. Errors
  /// when the producer graph has a cycle.
  [[nodiscard]] Result<std::vector<std::size_t>> topological_order() const;

  /// Number of two-input join layers (eltwise add / concat).
  [[nodiscard]] std::size_t join_count() const noexcept;

  /// Longest producer→consumer path, counted in layers (a linear N-layer
  /// network has depth N).
  [[nodiscard]] Result<std::size_t> dag_depth() const;

  /// Checks structural invariants: starts with exactly one kInput, window
  /// geometries fit, producer references resolve into an acyclic graph with
  /// a single sink, joins name exactly two producers, no spatial layer
  /// consumes a classifier output, names unique and non-empty. Returns the
  /// first violation.
  [[nodiscard]] Status validate() const;

  /// Runs shape inference; requires validate() to pass.
  [[nodiscard]] Result<std::vector<LayerShapes>> infer_shapes() const;

  /// Input blob shape (CHW) declared by the kInput layer.
  [[nodiscard]] Result<Shape> input_shape() const;

  /// Shape of the final output blob.
  [[nodiscard]] Result<Shape> output_shape() const;

  /// Total inference FLOPs for one image.
  [[nodiscard]] Result<std::uint64_t> total_flops() const;

  /// FLOPs of the features-extraction part only (conv + pool + their fused
  /// activations) — what Table 2 of the paper measures.
  [[nodiscard]] Result<std::uint64_t> feature_extraction_flops() const;

  /// Total trainable parameter count (weights + biases).
  [[nodiscard]] Result<std::uint64_t> parameter_count() const;

  /// Index of the first classifier layer (first kInnerProduct), or
  /// layer_count() when the network has no classifier.
  [[nodiscard]] std::size_t classifier_begin() const noexcept;

  /// Returns a copy containing only the input + feature-extraction prefix
  /// (plus interleaved activations), as evaluated in paper Table 2.
  [[nodiscard]] Network feature_extraction_prefix() const;

  /// One-line per layer human-readable summary.
  [[nodiscard]] std::string summary() const;

 private:
  std::string name_;
  std::vector<LayerSpec> layers_;
};

/// Shapes of the weight/bias tensors a layer requires.
/// Convolution: weights (num_output, in_channels, kh, kw), bias (num_output).
/// InnerProduct: weights (num_output, in_count), bias (num_output).
struct ParameterShapes {
  Shape weights;
  Shape bias;  ///< rank 0 when the layer has no bias
};

Result<ParameterShapes> parameter_shapes(const LayerSpec& layer, const Shape& input);

}  // namespace condor::nn

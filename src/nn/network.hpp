// Sequential network IR with shape inference and validation.
//
// Condor targets inference of feed-forward chains (features extraction
// followed by an MLP classifier, paper §2). The Network owns the layer list
// and provides per-layer input/output shapes, FLOP accounting (used by the
// GFLOPS computations in the evaluation) and structural validation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "nn/layer.hpp"
#include "tensor/tensor.hpp"

namespace condor::nn {

/// Resolved geometry of one layer within a network.
struct LayerShapes {
  Shape input;   ///< CHW for feature extraction, flat (N) for classifier
  Shape output;
};

class Network {
 public:
  Network() = default;
  explicit Network(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Appends a layer. The first layer must be kInput.
  void add(LayerSpec layer) { layers_.push_back(std::move(layer)); }

  [[nodiscard]] const std::vector<LayerSpec>& layers() const noexcept {
    return layers_;
  }
  [[nodiscard]] std::vector<LayerSpec>& layers() noexcept { return layers_; }
  [[nodiscard]] std::size_t layer_count() const noexcept { return layers_.size(); }

  /// Finds a layer by name, or nullptr.
  [[nodiscard]] const LayerSpec* find_layer(std::string_view name) const noexcept;

  /// Checks structural invariants: starts with exactly one kInput, window
  /// geometries fit, inner-product layers only after the last spatial layer,
  /// names unique and non-empty. Returns the first violation.
  [[nodiscard]] Status validate() const;

  /// Runs shape inference; requires validate() to pass.
  [[nodiscard]] Result<std::vector<LayerShapes>> infer_shapes() const;

  /// Input blob shape (CHW) declared by the kInput layer.
  [[nodiscard]] Result<Shape> input_shape() const;

  /// Shape of the final output blob.
  [[nodiscard]] Result<Shape> output_shape() const;

  /// Total inference FLOPs for one image.
  [[nodiscard]] Result<std::uint64_t> total_flops() const;

  /// FLOPs of the features-extraction part only (conv + pool + their fused
  /// activations) — what Table 2 of the paper measures.
  [[nodiscard]] Result<std::uint64_t> feature_extraction_flops() const;

  /// Total trainable parameter count (weights + biases).
  [[nodiscard]] Result<std::uint64_t> parameter_count() const;

  /// Index of the first classifier layer (first kInnerProduct), or
  /// layer_count() when the network has no classifier.
  [[nodiscard]] std::size_t classifier_begin() const noexcept;

  /// Returns a copy containing only the input + feature-extraction prefix
  /// (plus interleaved activations), as evaluated in paper Table 2.
  [[nodiscard]] Network feature_extraction_prefix() const;

  /// One-line per layer human-readable summary.
  [[nodiscard]] std::string summary() const;

 private:
  std::string name_;
  std::vector<LayerSpec> layers_;
};

/// Shapes of the weight/bias tensors a layer requires.
/// Convolution: weights (num_output, in_channels, kh, kw), bias (num_output).
/// InnerProduct: weights (num_output, in_count), bias (num_output).
struct ParameterShapes {
  Shape weights;
  Shape bias;  ///< rank 0 when the layer has no bias
};

Result<ParameterShapes> parameter_shapes(const LayerSpec& layer, const Shape& input);

}  // namespace condor::nn

#include "nn/kernels_simd.hpp"

#include <cstdio>
#include <cstdlib>

#include "nn/kernels_simd_internal.hpp"

namespace condor::nn::kernels {

// __builtin_cpu_supports requires a literal argument, hence a macro rather
// than a helper function.
#if defined(__x86_64__) || defined(__i386__)
#define CONDOR_CPU_HAS(feature) (__builtin_cpu_supports(feature) != 0)
#else
#define CONDOR_CPU_HAS(feature) false
#endif

namespace {

SimdLevel clamp_to_supported(SimdLevel level) noexcept {
  const SimdLevel max = max_supported_simd_level();
  return static_cast<int>(level) > static_cast<int>(max) ? max : level;
}

/// Env override (clamped) when set, widest supported level otherwise.
SimdLevel startup_level() noexcept {
  const char* env = std::getenv("CONDOR_SIMD");
  if (env != nullptr && env[0] != '\0') {
    SimdLevel parsed;
    if (parse_simd_level(env, parsed)) {
      return clamp_to_supported(parsed);
    }
    std::fprintf(stderr,
                 "condor: ignoring unknown CONDOR_SIMD=%s "
                 "(expected scalar|avx2|avx512)\n",
                 env);
  }
  return max_supported_simd_level();
}

const detail::IsaKernels* table_for(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kAvx512:
      return detail::avx512_kernels();
    case SimdLevel::kAvx2:
      return detail::avx2_kernels();
    case SimdLevel::kScalar:
      break;
  }
  return &detail::scalar_kernels();
}

}  // namespace

namespace detail {

ActiveKernels::ActiveKernels() noexcept { install(startup_level()); }

void ActiveKernels::install(SimdLevel requested) noexcept {
  const SimdLevel lvl = clamp_to_supported(requested);
  const IsaKernels* table = table_for(lvl);
  if (table == nullptr) {
    table = &scalar_kernels();
  }
  conv_f32.store(table->conv_f32, std::memory_order_relaxed);
  conv_i32_i64.store(table->conv_i32_i64, std::memory_order_relaxed);
  conv_i32_i32.store(table->conv_i32_i32, std::memory_order_relaxed);
  ip_f32.store(table->ip_f32, std::memory_order_relaxed);
  ip_i32_i64.store(table->ip_i32_i64, std::memory_order_relaxed);
  ip_i32_i32.store(table->ip_i32_i32, std::memory_order_relaxed);
  level.store(lvl, std::memory_order_release);
}

ActiveKernels& active_kernels() noexcept {
  static ActiveKernels instance;
  return instance;
}

}  // namespace detail

std::string_view to_string(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::kAvx512:
      return "avx512";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kScalar:
      break;
  }
  return "scalar";
}

bool parse_simd_level(std::string_view name, SimdLevel& out) noexcept {
  if (name == "scalar") {
    out = SimdLevel::kScalar;
  } else if (name == "avx2") {
    out = SimdLevel::kAvx2;
  } else if (name == "avx512") {
    out = SimdLevel::kAvx512;
  } else {
    return false;
  }
  return true;
}

SimdLevel max_supported_simd_level() noexcept {
  if (detail::avx512_kernels() != nullptr && CONDOR_CPU_HAS("avx512f")) {
    return SimdLevel::kAvx512;
  }
  if (detail::avx2_kernels() != nullptr && CONDOR_CPU_HAS("avx2") &&
      CONDOR_CPU_HAS("fma")) {
    return SimdLevel::kAvx2;
  }
  return SimdLevel::kScalar;
}

SimdLevel active_simd_level() noexcept {
  return detail::active_kernels().level.load(std::memory_order_acquire);
}

SimdLevel set_active_simd_level_for_testing(SimdLevel level) noexcept {
  detail::active_kernels().install(level);
  return active_simd_level();
}

std::string cpu_feature_string() {
  struct Feature {
    const char* name;
    bool present;
  };
  const Feature features[] = {
      {"sse2", CONDOR_CPU_HAS("sse2")},
      {"sse3", CONDOR_CPU_HAS("sse3")},
      {"ssse3", CONDOR_CPU_HAS("ssse3")},
      {"sse4.1", CONDOR_CPU_HAS("sse4.1")},
      {"sse4.2", CONDOR_CPU_HAS("sse4.2")},
      {"avx", CONDOR_CPU_HAS("avx")},
      {"avx2", CONDOR_CPU_HAS("avx2")},
      {"fma", CONDOR_CPU_HAS("fma")},
      {"avx512f", CONDOR_CPU_HAS("avx512f")},
      {"avx512bw", CONDOR_CPU_HAS("avx512bw")},
      {"avx512vl", CONDOR_CPU_HAS("avx512vl")},
  };
  std::string out;
  for (const Feature& f : features) {
    if (!f.present) {
      continue;
    }
    if (!out.empty()) {
      out += ' ';
    }
    out += f.name;
  }
  if (out.empty()) {
    out = "baseline";
  }
  return out;
}

template <typename T, typename Acc>
ConvRowFn<T, Acc> conv_row_kernel(SimdLevel level) noexcept {
  if (static_cast<int>(level) >
      static_cast<int>(max_supported_simd_level())) {
    return nullptr;
  }
  const detail::IsaKernels* table = table_for(level);
  return table != nullptr ? detail::conv_entry<T, Acc>(*table) : nullptr;
}

template <typename T, typename Acc>
InnerProductFn<T, Acc> inner_product_kernel(SimdLevel level) noexcept {
  if (static_cast<int>(level) >
      static_cast<int>(max_supported_simd_level())) {
    return nullptr;
  }
  const detail::IsaKernels* table = table_for(level);
  return table != nullptr ? detail::inner_product_entry<T, Acc>(*table)
                          : nullptr;
}

template ConvRowFn<float, float> conv_row_kernel<float, float>(
    SimdLevel) noexcept;
template ConvRowFn<std::int32_t, std::int64_t>
conv_row_kernel<std::int32_t, std::int64_t>(SimdLevel) noexcept;
template ConvRowFn<std::int32_t, std::int32_t>
conv_row_kernel<std::int32_t, std::int32_t>(SimdLevel) noexcept;
template InnerProductFn<float, float> inner_product_kernel<float, float>(
    SimdLevel) noexcept;
template InnerProductFn<std::int32_t, std::int64_t>
inner_product_kernel<std::int32_t, std::int64_t>(SimdLevel) noexcept;
template InnerProductFn<std::int32_t, std::int32_t>
inner_product_kernel<std::int32_t, std::int32_t>(SimdLevel) noexcept;

}  // namespace condor::nn::kernels

#include "nn/layer.hpp"

#include <cmath>

#include "common/strings.hpp"

namespace condor::nn {

std::string_view to_string(LayerKind kind) noexcept {
  switch (kind) {
    case LayerKind::kInput:
      return "input";
    case LayerKind::kConvolution:
      return "convolution";
    case LayerKind::kPooling:
      return "pooling";
    case LayerKind::kInnerProduct:
      return "inner_product";
    case LayerKind::kActivation:
      return "activation";
    case LayerKind::kSoftmax:
      return "softmax";
    case LayerKind::kEltwiseAdd:
      return "eltwise_add";
    case LayerKind::kConcat:
      return "concat";
    case LayerKind::kUpsample:
      return "upsample";
  }
  return "?";
}

std::string_view to_string(Activation activation) noexcept {
  switch (activation) {
    case Activation::kNone:
      return "none";
    case Activation::kReLU:
      return "relu";
    case Activation::kSigmoid:
      return "sigmoid";
    case Activation::kTanH:
      return "tanh";
    case Activation::kLeakyReLU:
      return "leaky_relu";
  }
  return "?";
}

std::string_view to_string(PoolMethod method) noexcept {
  switch (method) {
    case PoolMethod::kMax:
      return "max";
    case PoolMethod::kAverage:
      return "average";
  }
  return "?";
}

Result<LayerKind> parse_layer_kind(std::string_view text) {
  const std::string lower = strings::to_lower(text);
  if (lower == "input") {
    return LayerKind::kInput;
  }
  if (lower == "convolution" || lower == "conv") {
    return LayerKind::kConvolution;
  }
  if (lower == "pooling" || lower == "pool") {
    return LayerKind::kPooling;
  }
  if (lower == "inner_product" || lower == "innerproduct" || lower == "fc") {
    return LayerKind::kInnerProduct;
  }
  if (lower == "activation" || lower == "relu" || lower == "sigmoid" ||
      lower == "tanh" || lower == "leaky_relu") {
    return LayerKind::kActivation;
  }
  if (lower == "softmax") {
    return LayerKind::kSoftmax;
  }
  if (lower == "eltwise_add" || lower == "eltwise" || lower == "add" ||
      lower == "shortcut") {
    return LayerKind::kEltwiseAdd;
  }
  if (lower == "concat" || lower == "route") {
    return LayerKind::kConcat;
  }
  if (lower == "upsample") {
    return LayerKind::kUpsample;
  }
  return invalid_input("unknown layer kind '" + std::string(text) + "'");
}

Result<Activation> parse_activation(std::string_view text) {
  const std::string lower = strings::to_lower(text);
  if (lower == "none" || lower.empty()) {
    return Activation::kNone;
  }
  if (lower == "relu") {
    return Activation::kReLU;
  }
  if (lower == "sigmoid") {
    return Activation::kSigmoid;
  }
  if (lower == "tanh") {
    return Activation::kTanH;
  }
  if (lower == "leaky_relu" || lower == "leaky") {
    return Activation::kLeakyReLU;
  }
  return invalid_input("unknown activation '" + std::string(text) + "'");
}

Result<PoolMethod> parse_pool_method(std::string_view text) {
  const std::string lower = strings::to_lower(text);
  if (lower == "max") {
    return PoolMethod::kMax;
  }
  if (lower == "average" || lower == "ave" || lower == "avg") {
    return PoolMethod::kAverage;
  }
  return invalid_input("unknown pool method '" + std::string(text) + "'");
}

Result<std::size_t> window_output_extent(std::size_t input, std::size_t kernel,
                                         std::size_t stride, std::size_t pad) {
  if (kernel == 0 || stride == 0) {
    return invalid_input("window kernel and stride must be positive");
  }
  const std::size_t padded = input + 2 * pad;
  if (padded < kernel) {
    return invalid_input(strings::format(
        "window %zu does not fit input extent %zu (pad %zu)", kernel, input, pad));
  }
  // Paper eq. (2)/(3): floor((in - f) / stride) + 1.
  return (padded - kernel) / stride + 1;
}

std::uint64_t layer_flops(const LayerSpec& layer, const Shape& input,
                          const Shape& output) noexcept {
  switch (layer.kind) {
    case LayerKind::kInput:
      return 0;
    case LayerKind::kConvolution: {
      // Per output point: Cin * Kh * Kw MACs (2 FLOPs each) + optional bias add.
      const std::uint64_t out_points = output.element_count();
      const std::uint64_t macs_per_point =
          static_cast<std::uint64_t>(input[0]) * layer.kernel_h * layer.kernel_w;
      std::uint64_t flops = out_points * macs_per_point * 2;
      if (layer.has_bias) {
        flops += out_points;
      }
      if (layer.activation != Activation::kNone) {
        flops += out_points;
      }
      return flops;
    }
    case LayerKind::kPooling: {
      // One compare/add per window element per output point.
      return output.element_count() *
             static_cast<std::uint64_t>(layer.kernel_h) * layer.kernel_w;
    }
    case LayerKind::kInnerProduct: {
      const std::uint64_t in_count = input.element_count();
      const std::uint64_t out_count = output.element_count();
      std::uint64_t flops = in_count * out_count * 2;
      if (layer.has_bias) {
        flops += out_count;
      }
      if (layer.activation != Activation::kNone) {
        flops += out_count;
      }
      return flops;
    }
    case LayerKind::kActivation:
      return output.element_count();
    case LayerKind::kSoftmax:
      // exp + add + divide per element.
      return output.element_count() * 3;
    case LayerKind::kEltwiseAdd: {
      // One add per output element, plus the optional fused activation.
      std::uint64_t flops = output.element_count();
      if (layer.activation != Activation::kNone) {
        flops += output.element_count();
      }
      return flops;
    }
    case LayerKind::kConcat:
    case LayerKind::kUpsample:
      // Pure data movement: no arithmetic.
      return 0;
  }
  return 0;
}

float apply_activation(Activation activation, float x) noexcept {
  switch (activation) {
    case Activation::kNone:
      return x;
    case Activation::kReLU:
      return x > 0.0F ? x : 0.0F;
    case Activation::kSigmoid:
      return 1.0F / (1.0F + std::exp(-x));
    case Activation::kTanH:
      return std::tanh(x);
    case Activation::kLeakyReLU:
      return x > 0.0F ? x : kLeakyReluSlope * x;
  }
  return x;
}

}  // namespace condor::nn

// AVX-512 variants of the packed MAC microkernels, compiled with
// -mavx512f -ffp-contract=off (AVX512F only — no BW/VL dependence). Same
// structure and bit-exactness contract as the AVX2 unit; the wider registers
// double the j-lane count per MAC. Getter returns nullptr when the
// toolchain cannot target AVX-512.
#include "nn/kernels_simd_internal.hpp"

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace condor::nn::kernels::detail {

#if defined(__AVX512F__)
namespace {

/// float datapath: 16 lanes, multiply then add (two roundings).
struct F32Avx512 {
  using Elem = float;
  using Acc = float;
  using AccVec = __m512;
  using XVec = __m512;
  static constexpr std::size_t kWidth = 16;
  static AccVec load_acc(const float* p) noexcept { return _mm512_loadu_ps(p); }
  static void store_acc(float* p, AccVec v) noexcept { _mm512_storeu_ps(p, v); }
  static XVec broadcast(float x) noexcept { return _mm512_set1_ps(x); }
  static AccVec load_weights(const float* p) noexcept {
    return _mm512_loadu_ps(p);
  }
  static AccVec mac(AccVec a, AccVec w, XVec x) noexcept {
    return _mm512_add_ps(a, _mm512_mul_ps(w, x));
  }
};

/// fixed16 datapath: widening 32x32->64 multiply, int64 accumulation,
/// 8 lanes.
struct I64Avx512 {
  using Elem = std::int32_t;
  using Acc = std::int64_t;
  using AccVec = __m512i;
  using XVec = __m512i;
  static constexpr std::size_t kWidth = 8;
  static AccVec load_acc(const Acc* p) noexcept {
    return _mm512_loadu_si512(p);
  }
  static void store_acc(Acc* p, AccVec v) noexcept {
    _mm512_storeu_si512(p, v);
  }
  static XVec broadcast(Elem x) noexcept { return _mm512_set1_epi64(x); }
  static AccVec load_weights(const Elem* p) noexcept {
    return _mm512_cvtepi32_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
  }
  static AccVec mac(AccVec a, AccVec w, XVec x) noexcept {
    return _mm512_add_epi64(a, _mm512_mul_epi32(w, x));
  }
};

/// fixed8 datapath: exact low-half int32 multiply, 16 lanes.
struct I32Avx512 {
  using Elem = std::int32_t;
  using Acc = std::int32_t;
  using AccVec = __m512i;
  using XVec = __m512i;
  static constexpr std::size_t kWidth = 16;
  static AccVec load_acc(const Acc* p) noexcept {
    return _mm512_loadu_si512(p);
  }
  static void store_acc(Acc* p, AccVec v) noexcept {
    _mm512_storeu_si512(p, v);
  }
  static XVec broadcast(Elem x) noexcept { return _mm512_set1_epi32(x); }
  static AccVec load_weights(const Elem* p) noexcept {
    return _mm512_loadu_si512(p);
  }
  static AccVec mac(AccVec a, AccVec w, XVec x) noexcept {
    return _mm512_add_epi32(a, _mm512_mullo_epi32(w, x));
  }
};

void conv_f32(float* acc, std::size_t oc_count, std::size_t out_w,
              const float* const* taps, std::size_t tap_count,
              std::size_t x_stride, const float* packed,
              std::size_t packed_stride) {
  conv_row_impl<F32Avx512>(acc, oc_count, out_w, taps, tap_count, x_stride,
                           packed, packed_stride);
}
void conv_i32_i64(std::int64_t* acc, std::size_t oc_count, std::size_t out_w,
                  const std::int32_t* const* taps, std::size_t tap_count,
                  std::size_t x_stride, const std::int32_t* packed,
                  std::size_t packed_stride) {
  conv_row_impl<I64Avx512>(acc, oc_count, out_w, taps, tap_count, x_stride,
                           packed, packed_stride);
}
void conv_i32_i32(std::int32_t* acc, std::size_t oc_count, std::size_t out_w,
                  const std::int32_t* const* taps, std::size_t tap_count,
                  std::size_t x_stride, const std::int32_t* packed,
                  std::size_t packed_stride) {
  conv_row_impl<I32Avx512>(acc, oc_count, out_w, taps, tap_count, x_stride,
                           packed, packed_stride);
}
void ip_f32(float* acc, std::size_t out_count, const float* x,
            std::size_t in_count, const float* packed,
            std::size_t packed_stride) {
  inner_product_impl<F32Avx512>(acc, out_count, x, in_count, packed,
                                packed_stride);
}
void ip_i32_i64(std::int64_t* acc, std::size_t out_count,
                const std::int32_t* x, std::size_t in_count,
                const std::int32_t* packed, std::size_t packed_stride) {
  inner_product_impl<I64Avx512>(acc, out_count, x, in_count, packed,
                                packed_stride);
}
void ip_i32_i32(std::int32_t* acc, std::size_t out_count,
                const std::int32_t* x, std::size_t in_count,
                const std::int32_t* packed, std::size_t packed_stride) {
  inner_product_impl<I32Avx512>(acc, out_count, x, in_count, packed,
                                packed_stride);
}

}  // namespace

const IsaKernels* avx512_kernels() noexcept {
  static const IsaKernels kTable = {
      &conv_f32, &conv_i32_i64, &conv_i32_i32,
      &ip_f32,   &ip_i32_i64,   &ip_i32_i32,
  };
  return &kTable;
}

#else  // !defined(__AVX512F__)

const IsaKernels* avx512_kernels() noexcept { return nullptr; }

#endif

}  // namespace condor::nn::kernels::detail

#include "nn/kernels.hpp"

namespace condor::nn::kernels {

std::vector<float> pack_conv_weights(std::span<const float> weights,
                                     std::size_t out_channels,
                                     std::size_t in_channels,
                                     std::size_t window_h,
                                     std::size_t window_w) {
  const std::size_t taps = window_h * window_w;
  std::vector<float> packed(out_channels * in_channels * taps);
  for (std::size_t oc = 0; oc < out_channels; ++oc) {
    const float* src = weights.data() + oc * in_channels * taps;
    for (std::size_t it = 0; it < in_channels * taps; ++it) {
      packed[it * out_channels + oc] = src[it];
    }
  }
  return packed;
}

std::vector<float> unpack_conv_weights(std::span<const float> packed,
                                       std::size_t out_channels,
                                       std::size_t in_channels,
                                       std::size_t window_h,
                                       std::size_t window_w) {
  const std::size_t taps = window_h * window_w;
  std::vector<float> weights(out_channels * in_channels * taps);
  for (std::size_t oc = 0; oc < out_channels; ++oc) {
    float* dst = weights.data() + oc * in_channels * taps;
    for (std::size_t it = 0; it < in_channels * taps; ++it) {
      dst[it] = packed[it * out_channels + oc];
    }
  }
  return weights;
}

std::vector<float> pack_inner_product_weights(std::span<const float> weights,
                                              std::size_t out_count,
                                              std::size_t in_count) {
  std::vector<float> packed(out_count * in_count);
  for (std::size_t o = 0; o < out_count; ++o) {
    for (std::size_t h = 0; h < in_count; ++h) {
      packed[h * out_count + o] = weights[o * in_count + h];
    }
  }
  return packed;
}

std::vector<float> unpack_inner_product_weights(std::span<const float> packed,
                                                std::size_t out_count,
                                                std::size_t in_count) {
  std::vector<float> weights(out_count * in_count);
  for (std::size_t o = 0; o < out_count; ++o) {
    for (std::size_t h = 0; h < in_count; ++h) {
      weights[o * in_count + h] = packed[h * out_count + o];
    }
  }
  return weights;
}

void conv_accumulate_row(float* acc, std::size_t oc_count, std::size_t out_w,
                         const float* const* taps, std::size_t tap_count,
                         std::size_t x_stride, const float* packed,
                         std::size_t packed_stride) {
  for (std::size_t ox = 0; ox < out_w; ++ox) {
    float* __restrict point_acc = acc + ox * oc_count;
    for (std::size_t t = 0; t < tap_count; ++t) {
      const float x = taps[t][ox * x_stride];
      const float* __restrict w = packed + t * packed_stride;
      for (std::size_t j = 0; j < oc_count; ++j) {
        point_acc[j] += w[j] * x;
      }
    }
  }
}

void inner_product_accumulate(float* acc, std::size_t out_count,
                              const float* x, std::size_t in_count,
                              const float* packed, std::size_t packed_stride) {
  for (std::size_t h = 0; h < in_count; ++h) {
    const float xv = x[h];
    const float* __restrict w = packed + h * packed_stride;
    float* __restrict a = acc;
    for (std::size_t j = 0; j < out_count; ++j) {
      a[j] += w[j] * xv;
    }
  }
}

}  // namespace condor::nn::kernels

#include "nn/kernels.hpp"

#include "nn/kernels_simd_internal.hpp"

namespace condor::nn::kernels {

template <typename T>
std::vector<T> pack_conv_weights(std::span<const T> weights,
                                 std::size_t out_channels,
                                 std::size_t in_channels,
                                 std::size_t window_h,
                                 std::size_t window_w) {
  const std::size_t taps = window_h * window_w;
  std::vector<T> packed(out_channels * in_channels * taps);
  for (std::size_t oc = 0; oc < out_channels; ++oc) {
    const T* src = weights.data() + oc * in_channels * taps;
    for (std::size_t it = 0; it < in_channels * taps; ++it) {
      packed[it * out_channels + oc] = src[it];
    }
  }
  return packed;
}

template <typename T>
std::vector<T> unpack_conv_weights(std::span<const T> packed,
                                   std::size_t out_channels,
                                   std::size_t in_channels,
                                   std::size_t window_h,
                                   std::size_t window_w) {
  const std::size_t taps = window_h * window_w;
  std::vector<T> weights(out_channels * in_channels * taps);
  for (std::size_t oc = 0; oc < out_channels; ++oc) {
    T* dst = weights.data() + oc * in_channels * taps;
    for (std::size_t it = 0; it < in_channels * taps; ++it) {
      dst[it] = packed[it * out_channels + oc];
    }
  }
  return weights;
}

template <typename T>
std::vector<T> pack_inner_product_weights(std::span<const T> weights,
                                          std::size_t out_count,
                                          std::size_t in_count) {
  std::vector<T> packed(out_count * in_count);
  for (std::size_t o = 0; o < out_count; ++o) {
    for (std::size_t h = 0; h < in_count; ++h) {
      packed[h * out_count + o] = weights[o * in_count + h];
    }
  }
  return packed;
}

template <typename T>
std::vector<T> unpack_inner_product_weights(std::span<const T> packed,
                                            std::size_t out_count,
                                            std::size_t in_count) {
  std::vector<T> weights(out_count * in_count);
  for (std::size_t o = 0; o < out_count; ++o) {
    for (std::size_t h = 0; h < in_count; ++h) {
      weights[o * in_count + h] = packed[h * out_count + o];
    }
  }
  return weights;
}

namespace detail {
namespace {

// Portable loop bodies: the dispatch's always-available fallback, and the
// byte-equality oracle every SIMD variant is tested against. Auto-vectorized
// at -O3 with contraction disabled (see nn/CMakeLists.txt) so the float
// multiply-then-add keeps two roundings on every build.
template <typename T, typename Acc>
void scalar_conv_row(Acc* acc, std::size_t oc_count, std::size_t out_w,
                     const T* const* taps, std::size_t tap_count,
                     std::size_t x_stride, const T* packed,
                     std::size_t packed_stride) {
  for (std::size_t ox = 0; ox < out_w; ++ox) {
    Acc* __restrict point_acc = acc + ox * oc_count;
    for (std::size_t t = 0; t < tap_count; ++t) {
      const Acc x = static_cast<Acc>(taps[t][ox * x_stride]);
      const T* __restrict w = packed + t * packed_stride;
      for (std::size_t j = 0; j < oc_count; ++j) {
        point_acc[j] += static_cast<Acc>(w[j]) * x;
      }
    }
  }
}

template <typename T, typename Acc>
void scalar_inner_product(Acc* acc, std::size_t out_count,
                          const T* x, std::size_t in_count,
                          const T* packed, std::size_t packed_stride) {
  for (std::size_t h = 0; h < in_count; ++h) {
    const Acc xv = static_cast<Acc>(x[h]);
    const T* __restrict w = packed + h * packed_stride;
    Acc* __restrict a = acc;
    for (std::size_t j = 0; j < out_count; ++j) {
      a[j] += static_cast<Acc>(w[j]) * xv;
    }
  }
}

}  // namespace

const IsaKernels& scalar_kernels() noexcept {
  static const IsaKernels kTable = {
      &scalar_conv_row<float, float>,
      &scalar_conv_row<std::int32_t, std::int64_t>,
      &scalar_conv_row<std::int32_t, std::int32_t>,
      &scalar_inner_product<float, float>,
      &scalar_inner_product<std::int32_t, std::int64_t>,
      &scalar_inner_product<std::int32_t, std::int32_t>,
  };
  return kTable;
}

}  // namespace detail

template <typename T, typename Acc>
void conv_accumulate_row(Acc* acc, std::size_t oc_count, std::size_t out_w,
                         const T* const* taps, std::size_t tap_count,
                         std::size_t x_stride, const T* packed,
                         std::size_t packed_stride) {
  detail::active_conv_row<T, Acc>()(acc, oc_count, out_w, taps, tap_count,
                                    x_stride, packed, packed_stride);
}

template <typename T, typename Acc>
void inner_product_accumulate(Acc* acc, std::size_t out_count,
                              const T* x, std::size_t in_count,
                              const T* packed, std::size_t packed_stride) {
  detail::active_inner_product<T, Acc>()(acc, out_count, x, in_count, packed,
                                         packed_stride);
}

// Explicit instantiations — the only (T, Acc) combinations the datapaths
// use (float, and int32 codes with a widened integer accumulator). They
// live here so every caller links against this -O3-compiled TU.
template std::vector<float> pack_conv_weights<float>(
    std::span<const float>, std::size_t, std::size_t, std::size_t, std::size_t);
template std::vector<std::int32_t> pack_conv_weights<std::int32_t>(
    std::span<const std::int32_t>, std::size_t, std::size_t, std::size_t,
    std::size_t);
template std::vector<float> unpack_conv_weights<float>(
    std::span<const float>, std::size_t, std::size_t, std::size_t, std::size_t);
template std::vector<std::int32_t> unpack_conv_weights<std::int32_t>(
    std::span<const std::int32_t>, std::size_t, std::size_t, std::size_t,
    std::size_t);
template std::vector<float> pack_inner_product_weights<float>(
    std::span<const float>, std::size_t, std::size_t);
template std::vector<std::int32_t> pack_inner_product_weights<std::int32_t>(
    std::span<const std::int32_t>, std::size_t, std::size_t);
template std::vector<float> unpack_inner_product_weights<float>(
    std::span<const float>, std::size_t, std::size_t);
template std::vector<std::int32_t> unpack_inner_product_weights<std::int32_t>(
    std::span<const std::int32_t>, std::size_t, std::size_t);

template void conv_accumulate_row<float, float>(
    float*, std::size_t, std::size_t, const float* const*, std::size_t,
    std::size_t, const float*, std::size_t);
template void conv_accumulate_row<std::int32_t, std::int64_t>(
    std::int64_t*, std::size_t, std::size_t, const std::int32_t* const*,
    std::size_t, std::size_t, const std::int32_t*, std::size_t);
template void conv_accumulate_row<std::int32_t, std::int32_t>(
    std::int32_t*, std::size_t, std::size_t, const std::int32_t* const*,
    std::size_t, std::size_t, const std::int32_t*, std::size_t);

template void inner_product_accumulate<float, float>(
    float*, std::size_t, const float*, std::size_t, const float*, std::size_t);
template void inner_product_accumulate<std::int32_t, std::int64_t>(
    std::int64_t*, std::size_t, const std::int32_t*, std::size_t,
    const std::int32_t*, std::size_t);
template void inner_product_accumulate<std::int32_t, std::int32_t>(
    std::int32_t*, std::size_t, const std::int32_t*, std::size_t,
    const std::int32_t*, std::size_t);

}  // namespace condor::nn::kernels

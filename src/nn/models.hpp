// Model zoo: the three networks evaluated in the paper.
//
// - TC1: the USPS-digit CNN from Bacis et al. [25] (IPDPSW'17), the paper's
//   first test case. [25] is not reproduced verbatim in the provided text;
//   we reconstruct the USPS-scale topology it describes (16x16x1 input, two
//   conv + average-pool stages with tanh activations — LeNet-1 style — and a
//   small fully-connected classifier over the 10 digit classes). The paper's
//   resource/GFLOPS shapes depend on the layer geometry class, not the exact
//   filter counts, so this reconstruction preserves the evaluation.
// - LeNet: the Caffe MNIST `lenet.prototxt` referenced by the paper
//   (conv 20@5x5 -> maxpool2 -> conv 50@5x5 -> maxpool2 -> ip 500 + ReLU ->
//   ip 10 -> softmax) on 28x28x1 inputs.
// - VGG-16: Simonyan & Zisserman configuration D on 224x224x3 inputs;
//   used by Table 2 (features-extraction only — the paper notes its FC
//   layers are not synthesizable with the current methodology).
#pragma once

#include "nn/network.hpp"

namespace condor::nn {

/// TC1 — the test-case network of [25], USPS 16x16 grayscale digits.
Network make_tc1();

/// LeNet from the Caffe MNIST example, 28x28 grayscale digits.
Network make_lenet();

/// VGG-16 (configuration D), 224x224 RGB.
Network make_vgg16();

/// Tiny ResNet-style branchy fixture: a stem convolution, two residual
/// blocks joined by eltwise adds, and a concat head over both block
/// outputs, followed by pool -> fc -> softmax. Exercises every DAG feature
/// (fan-out, eltwise join, concat join) at unit-test scale.
Network make_tiny_resnet();

/// LeNet with a residual skip: pool1 is added element-wise to a padded
/// 3x3 convolution of itself before the classifier. The smallest realistic
/// skip-connection example.
Network make_lenet_skip();

/// Looks a model up by case-insensitive name ("tc1", "lenet", "vgg16",
/// "tiny_resnet", "lenet_skip").
Result<Network> make_model(std::string_view name);

}  // namespace condor::nn

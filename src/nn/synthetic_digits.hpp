// Synthetic digit dataset generator.
//
// The paper's TC1 test case is trained on USPS (16x16 grayscale digits) and
// LeNet on MNIST (28x28); neither dataset ships with this offline
// reproduction. Since the evaluation measures inference throughput and
// resource usage — not accuracy — any input with the right shape exercises
// the same code path. This generator renders deterministic digit glyphs on a
// 7-segment-plus-diagonals skeleton, with optional sub-pixel jitter and
// Gaussian noise, so examples still produce human-interpretable
// classifications and tests get varied, reproducible inputs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace condor::nn {

struct DigitSample {
  Tensor image;  ///< (1, size, size), values in [0, 1]
  int label = 0;
};

/// Renders digit `label` (0-9) into a (1, size, size) tensor.
/// `jitter` shifts the glyph by up to ±1 pixel; `noise_stddev` adds clipped
/// Gaussian noise. Deterministic given `rng` state.
Tensor render_digit(int label, std::size_t size, Rng& rng, bool jitter = true,
                    float noise_stddev = 0.05F);

/// Generates `count` samples with labels cycling 0..9.
std::vector<DigitSample> make_digit_dataset(std::size_t count, std::size_t size,
                                            std::uint64_t seed = 7);

}  // namespace condor::nn

// Packed, vectorization-friendly MAC microkernels shared by the golden CPU
// reference and the dataflow PE modules.
//
// The scalar loops both engines used previously walk the weight tensor in
// its storage order (oc, ic, ky, kx) with an index multiply per access and
// an oc-outer accumulator stride of a whole output map — a pattern the
// auto-vectorizer cannot turn into contiguous SIMD loads. These kernels
// instead operate on a one-time repack of the weights that puts the output
// channel innermost:
//
//   convolution    (oc, ic, ky, kx)  ->  (ic, ky, kx, oc)
//   inner product  (out, in)         ->  (in, out)
//
// so the hot loop is a contiguous `acc[j] += w[j] * x` sweep over a register
// tile of per-output-channel accumulators (the weight-reshaping-for-SIMD
// trick of Caffeinated FPGAs / fpgaConvNet applied to the host kernels).
//
// The kernels are templated over the element type `T` and the accumulator
// type `Acc` so the same loops serve both datapaths (see nn/numeric.hpp):
//
//   float   datapath: T = float,        Acc = float
//   fixed16 datapath: T = std::int32_t, Acc = std::int64_t  (codes; a
//                     16x16-bit product needs 30 bits, int32 would overflow
//                     mid-sum)
//   fixed8  datapath: T = std::int32_t, Acc = std::int32_t  (widened int32)
//
// Only these combinations are instantiated (explicitly, in kernels.cpp,
// which is compiled -O3 — the templates have no inline definitions here so
// every caller links against the optimized instantiations).
//
// Bit-exactness: for every float output element the accumulation chain is
// unchanged — the bias seed followed by the (ic, ky, kx)-ordered adds. Only
// the iteration order *across* independent output channels moves, which
// cannot alter any individual float result. Integer accumulation is exact,
// so for the fixed datapaths any order yields the same sum. Both engines
// call these same functions, so they stay bit-identical to each other by
// construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace condor::nn::kernels {

/// Repacks row-major (oc, ic, ky, kx) convolution weights into the packed
/// (ic, ky, kx, oc) layout. `weights.size()` must equal
/// `out_channels * in_channels * window_h * window_w`.
template <typename T>
std::vector<T> pack_conv_weights(std::span<const T> weights,
                                 std::size_t out_channels,
                                 std::size_t in_channels,
                                 std::size_t window_h,
                                 std::size_t window_w);

/// Inverse of pack_conv_weights: packed (ic, ky, kx, oc) back to the
/// canonical (oc, ic, ky, kx) storage order.
template <typename T>
std::vector<T> unpack_conv_weights(std::span<const T> packed,
                                   std::size_t out_channels,
                                   std::size_t in_channels,
                                   std::size_t window_h,
                                   std::size_t window_w);

/// Repacks row-major (out, in) inner-product weights into the transposed
/// (in, out) layout (out contiguous).
template <typename T>
std::vector<T> pack_inner_product_weights(std::span<const T> weights,
                                          std::size_t out_count,
                                          std::size_t in_count);

/// Inverse of pack_inner_product_weights.
template <typename T>
std::vector<T> unpack_inner_product_weights(std::span<const T> packed,
                                            std::size_t out_count,
                                            std::size_t in_count);

/// One (input-channel, output-row) convolution update over a tile of
/// `oc_count` output channels:
///
///   acc[ox * oc_count + j] += taps[t][ox * x_stride] * packed[t * packed_stride + j]
///
/// for every output column ox in [0, out_w) and window tap t in
/// [0, tap_count), with t enumerating (ky, kx) in lexicographic order.
/// `taps[t]` points at the tap's window value for ox = 0; consecutive
/// columns are `x_stride` elements apart (the convolution stride when
/// reading a raw input row, 1 when reading pre-gathered PE port rows).
/// `packed` points at the (possibly oc-sliced) packed weight block of the
/// current input channel; rows of consecutive taps are `packed_stride`
/// apart (the full out_channels when `oc_count` is a lane's slice).
///
/// The j-loop is contiguous in both `acc` and `packed`, so it vectorizes;
/// per output element the adds still arrive in (ky, kx) order. Products
/// are formed in `Acc` (widening first for the integer datapaths).
template <typename T, typename Acc>
void conv_accumulate_row(Acc* acc, std::size_t oc_count, std::size_t out_w,
                         const T* const* taps, std::size_t tap_count,
                         std::size_t x_stride, const T* packed,
                         std::size_t packed_stride);

/// Inner-product update over a tile of `out_count` outputs:
///
///   acc[j] += x[h] * packed[h * packed_stride + j]   for h in [0, in_count)
///
/// `acc` must be seeded (bias or zero) by the caller; adds arrive in
/// ascending-h order, matching the scalar row-dot-product chain exactly.
template <typename T, typename Acc>
void inner_product_accumulate(Acc* acc, std::size_t out_count,
                              const T* x, std::size_t in_count,
                              const T* packed, std::size_t packed_stride);

}  // namespace condor::nn::kernels

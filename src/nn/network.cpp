#include "nn/network.hpp"

#include <algorithm>
#include <set>

#include "common/strings.hpp"

namespace condor::nn {

const LayerSpec* Network::find_layer(std::string_view name) const noexcept {
  for (const LayerSpec& layer : layers_) {
    if (layer.name == name) {
      return &layer;
    }
  }
  return nullptr;
}

Result<std::size_t> Network::layer_index(std::string_view name) const {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i].name == name) {
      return i;
    }
  }
  return not_found("network '" + name_ + "' has no layer named '" +
                   std::string(name) + "'");
}

Result<std::vector<std::size_t>> Network::producers(std::size_t index) const {
  if (index >= layers_.size()) {
    return invalid_input(strings::format("layer index %zu out of range", index));
  }
  const LayerSpec& layer = layers_[index];
  std::vector<std::size_t> out;
  if (layer.inputs.empty()) {
    // The implicit linear chain: every non-input layer consumes the blob of
    // the layer declared just before it.
    if (layer.kind != LayerKind::kInput && index > 0) {
      out.push_back(index - 1);
    }
    return out;
  }
  if (layer.kind == LayerKind::kInput) {
    return invalid_input("input layer '" + layer.name +
                         "' cannot name producers");
  }
  out.reserve(layer.inputs.size());
  for (const std::string& input : layer.inputs) {
    CONDOR_ASSIGN_OR_RETURN(std::size_t producer, layer_index(input));
    if (producer == index) {
      return invalid_input("layer '" + layer.name +
                           "' consumes its own output");
    }
    out.push_back(producer);
  }
  return out;
}

Result<std::vector<std::vector<std::size_t>>> Network::consumers() const {
  std::vector<std::vector<std::size_t>> out(layers_.size());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    CONDOR_ASSIGN_OR_RETURN(auto prods, producers(i));
    for (std::size_t p : prods) {
      out[p].push_back(i);
    }
  }
  return out;
}

Result<std::vector<std::size_t>> Network::topological_order() const {
  const std::size_t n = layers_.size();
  std::vector<std::vector<std::size_t>> consumer_of(n);
  std::vector<std::size_t> indegree(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    CONDOR_ASSIGN_OR_RETURN(auto prods, producers(i));
    indegree[i] = prods.size();
    for (std::size_t p : prods) {
      consumer_of[p].push_back(i);
    }
  }
  // Kahn's algorithm, always emitting the lowest ready index: a network
  // whose declaration order is already topological (every linear chain)
  // comes back as the identity permutation.
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<bool> emitted(n, false);
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t next = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (!emitted[i] && indegree[i] == 0) {
        next = i;
        break;
      }
    }
    if (next == n) {
      return invalid_input("network '" + name_ +
                           "' has a cycle in its producer graph");
    }
    emitted[next] = true;
    order.push_back(next);
    for (std::size_t c : consumer_of[next]) {
      --indegree[c];
    }
  }
  return order;
}

std::size_t Network::join_count() const noexcept {
  std::size_t count = 0;
  for (const LayerSpec& layer : layers_) {
    if (layer.is_join()) {
      ++count;
    }
  }
  return count;
}

Result<std::size_t> Network::dag_depth() const {
  CONDOR_ASSIGN_OR_RETURN(auto order, topological_order());
  std::vector<std::size_t> depth(layers_.size(), 0);
  std::size_t deepest = 0;
  for (std::size_t i : order) {
    CONDOR_ASSIGN_OR_RETURN(auto prods, producers(i));
    std::size_t d = 1;
    for (std::size_t p : prods) {
      d = std::max(d, depth[p] + 1);
    }
    depth[i] = d;
    deepest = std::max(deepest, d);
  }
  return deepest;
}

Status Network::validate() const {
  if (layers_.empty()) {
    return invalid_input("network '" + name_ + "' has no layers");
  }
  if (layers_.front().kind != LayerKind::kInput) {
    return invalid_input("first layer must be an input layer");
  }
  std::set<std::string> names;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const LayerSpec& layer = layers_[i];
    if (layer.name.empty()) {
      return invalid_input(strings::format("layer %zu has an empty name", i));
    }
    if (!names.insert(layer.name).second) {
      return invalid_input("duplicate layer name '" + layer.name + "'");
    }
    if (layer.inputs.size() > 1 && !layer.is_join()) {
      return invalid_input(std::string(to_string(layer.kind)) + " '" +
                           layer.name + "' can consume at most one input");
    }
    switch (layer.kind) {
      case LayerKind::kInput:
        if (i != 0) {
          return invalid_input("input layer '" + layer.name +
                               "' must be the first layer");
        }
        if (layer.input_channels == 0 || layer.input_height == 0 ||
            layer.input_width == 0) {
          return invalid_input("input layer '" + layer.name +
                               "' must declare a non-empty CHW shape");
        }
        break;
      case LayerKind::kConvolution:
        if (layer.num_output == 0) {
          return invalid_input("convolution '" + layer.name +
                               "' must have num_output > 0");
        }
        if (layer.kernel_h == 0 || layer.kernel_w == 0 || layer.stride == 0) {
          return invalid_input("convolution '" + layer.name +
                               "' has invalid window geometry");
        }
        break;
      case LayerKind::kPooling:
        if (layer.kernel_h == 0 || layer.kernel_w == 0 || layer.stride == 0) {
          return invalid_input("pooling '" + layer.name +
                               "' has invalid window geometry");
        }
        if (layer.pad != 0) {
          // Same rejection (and status code) as nn::forward_pooling: the
          // zero border is wrong for max pooling, so a padded pooling spec
          // is an input error, not a backend limitation.
          return invalid_input("pooling '" + layer.name +
                               "' with padding is not supported");
        }
        break;
      case LayerKind::kInnerProduct:
        if (layer.num_output == 0) {
          return invalid_input("inner product '" + layer.name +
                               "' must have num_output > 0");
        }
        break;
      case LayerKind::kActivation:
        if (layer.activation == Activation::kNone) {
          return invalid_input("activation layer '" + layer.name +
                               "' must name a function");
        }
        break;
      case LayerKind::kSoftmax:
        if (i + 1 != layers_.size()) {
          return invalid_input("softmax '" + layer.name +
                               "' must be the final layer");
        }
        break;
      case LayerKind::kEltwiseAdd:
      case LayerKind::kConcat:
        if (layer.inputs.size() != 2) {
          return invalid_input(std::string(to_string(layer.kind)) + " '" +
                               layer.name + "' must name exactly two inputs");
        }
        break;
      case LayerKind::kUpsample:
        if (layer.stride == 0) {
          return invalid_input("upsample '" + layer.name +
                               "' must have a positive scale (stride)");
        }
        break;
    }
  }
  // The producer graph must resolve and sort: topological_order() surfaces
  // unknown input names, self-references, and cycles.
  CONDOR_ASSIGN_OR_RETURN(const auto order, topological_order());
  // Spatial layers cannot consume a classifier output: walk the sorted DAG
  // and taint everything downstream of an inner-product layer (the flattened
  // half of the network). For linear chains this reproduces the old
  // "classifier started" declaration-order check verbatim.
  std::vector<bool> flattened(layers_.size(), false);
  std::size_t sink_count = 0;
  std::vector<std::size_t> consumer_count(layers_.size(), 0);
  for (std::size_t i : order) {
    const LayerSpec& layer = layers_[i];
    CONDOR_ASSIGN_OR_RETURN(const auto prods, producers(i));
    bool tainted = layer.kind == LayerKind::kInnerProduct;
    for (std::size_t p : prods) {
      consumer_count[p] += 1;
      tainted = tainted || flattened[p];
    }
    if (tainted && layer.kind != LayerKind::kInnerProduct &&
        layer.kind != LayerKind::kActivation &&
        layer.kind != LayerKind::kSoftmax) {
      return invalid_input(std::string(to_string(layer.kind)) + " '" +
                           layer.name +
                           "' cannot follow an inner-product layer");
    }
    flattened[i] = tainted;
  }
  std::size_t sink = layers_.size();
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (consumer_count[i] == 0) {
      ++sink_count;
      sink = i;
    }
  }
  if (sink_count != 1) {
    return invalid_input(strings::format(
        "network '%s' must have exactly one output layer (found %zu "
        "unconsumed blobs)",
        name_.c_str(), sink_count));
  }
  if (sink + 1 != layers_.size()) {
    return invalid_input("network '" + name_ + "' output layer '" +
                         layers_[sink].name + "' must be declared last");
  }
  return Status::ok();
}

Result<std::vector<LayerShapes>> Network::infer_shapes() const {
  CONDOR_RETURN_IF_ERROR(validate());
  CONDOR_ASSIGN_OR_RETURN(const auto order, topological_order());
  std::vector<LayerShapes> shapes(layers_.size());
  for (std::size_t i : order) {
    const LayerSpec& layer = layers_[i];
    CONDOR_ASSIGN_OR_RETURN(const auto prods, producers(i));
    LayerShapes& entry = shapes[i];
    entry.input = prods.empty() ? Shape{} : shapes[prods.front()].output;
    switch (layer.kind) {
      case LayerKind::kInput:
        entry.output =
            Shape{layer.input_channels, layer.input_height, layer.input_width};
        break;
      case LayerKind::kConvolution: {
        if (entry.input.rank() != 3) {
          return invalid_input("convolution '" + layer.name +
                               "' requires a CHW input");
        }
        CONDOR_ASSIGN_OR_RETURN(
            std::size_t out_h,
            window_output_extent(entry.input[1], layer.kernel_h, layer.stride,
                                 layer.pad));
        CONDOR_ASSIGN_OR_RETURN(
            std::size_t out_w,
            window_output_extent(entry.input[2], layer.kernel_w, layer.stride,
                                 layer.pad));
        entry.output = Shape{layer.num_output, out_h, out_w};
        break;
      }
      case LayerKind::kPooling: {
        if (entry.input.rank() != 3) {
          return invalid_input("pooling '" + layer.name + "' requires a CHW input");
        }
        CONDOR_ASSIGN_OR_RETURN(
            std::size_t out_h,
            window_output_extent(entry.input[1], layer.kernel_h, layer.stride, 0));
        CONDOR_ASSIGN_OR_RETURN(
            std::size_t out_w,
            window_output_extent(entry.input[2], layer.kernel_w, layer.stride, 0));
        entry.output = Shape{entry.input[0], out_h, out_w};
        break;
      }
      case LayerKind::kInnerProduct:
        // Implicit flatten of whatever precedes, as in Caffe.
        entry.output = Shape{layer.num_output};
        break;
      case LayerKind::kActivation:
      case LayerKind::kSoftmax:
        entry.output = entry.input;
        break;
      case LayerKind::kEltwiseAdd: {
        const Shape& a = shapes[prods[0]].output;
        const Shape& b = shapes[prods[1]].output;
        if (a.rank() != 3 || b.rank() != 3) {
          return invalid_input("eltwise_add '" + layer.name +
                               "' requires CHW inputs");
        }
        if (a != b) {
          return invalid_input("eltwise_add '" + layer.name +
                               "' input shapes disagree: " + a.to_string() +
                               " vs " + b.to_string());
        }
        entry.output = a;
        break;
      }
      case LayerKind::kConcat: {
        const Shape& a = shapes[prods[0]].output;
        const Shape& b = shapes[prods[1]].output;
        if (a.rank() != 3 || b.rank() != 3) {
          return invalid_input("concat '" + layer.name +
                               "' requires CHW inputs");
        }
        if (a[1] != b[1] || a[2] != b[2]) {
          return invalid_input("concat '" + layer.name +
                               "' input spatial extents disagree: " +
                               a.to_string() + " vs " + b.to_string());
        }
        entry.output = Shape{a[0] + b[0], a[1], a[2]};
        break;
      }
      case LayerKind::kUpsample: {
        if (entry.input.rank() != 3) {
          return invalid_input("upsample '" + layer.name +
                               "' requires a CHW input");
        }
        entry.output = Shape{entry.input[0], entry.input[1] * layer.stride,
                             entry.input[2] * layer.stride};
        break;
      }
    }
  }
  return shapes;
}

Result<Shape> Network::input_shape() const {
  CONDOR_RETURN_IF_ERROR(validate());
  const LayerSpec& input = layers_.front();
  return Shape{input.input_channels, input.input_height, input.input_width};
}

Result<Shape> Network::output_shape() const {
  CONDOR_ASSIGN_OR_RETURN(auto shapes, infer_shapes());
  return shapes.back().output;
}

Result<std::uint64_t> Network::total_flops() const {
  CONDOR_ASSIGN_OR_RETURN(auto shapes, infer_shapes());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    total += layer_flops(layers_[i], shapes[i].input, shapes[i].output);
  }
  return total;
}

Result<std::uint64_t> Network::feature_extraction_flops() const {
  CONDOR_ASSIGN_OR_RETURN(auto shapes, infer_shapes());
  const std::size_t end = classifier_begin();
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < end; ++i) {
    total += layer_flops(layers_[i], shapes[i].input, shapes[i].output);
  }
  return total;
}

Result<std::uint64_t> Network::parameter_count() const {
  CONDOR_ASSIGN_OR_RETURN(auto shapes, infer_shapes());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (!layers_[i].has_weights()) {
      continue;
    }
    CONDOR_ASSIGN_OR_RETURN(auto params,
                            parameter_shapes(layers_[i], shapes[i].input));
    total += params.weights.element_count();
    if (params.bias.rank() > 0) {
      total += params.bias.element_count();
    }
  }
  return total;
}

std::size_t Network::classifier_begin() const noexcept {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i].kind == LayerKind::kInnerProduct) {
      return i;
    }
  }
  return layers_.size();
}

Network Network::feature_extraction_prefix() const {
  Network prefix(name_ + "-features");
  const std::size_t end = classifier_begin();
  for (std::size_t i = 0; i < end; ++i) {
    prefix.add(layers_[i]);
  }
  return prefix;
}

std::string Network::summary() const {
  std::string out = "network '" + name_ + "' (" +
                    std::to_string(layers_.size()) + " layers)\n";
  auto shapes_result = infer_shapes();
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const LayerSpec& layer = layers_[i];
    out += strings::format("  [%2zu] %-14s %-14s", i,
                           std::string(to_string(layer.kind)).c_str(),
                           layer.name.c_str());
    if (shapes_result.is_ok()) {
      const LayerShapes& shapes = shapes_result.value()[i];
      // Separate appends: the operator+ temporary chain trips GCC 12's
      // -Wrestrict false positive (PR105651) under -O3 -Werror.
      out += ' ';
      out += shapes.input.to_string();
      out += " -> ";
      out += shapes.output.to_string();
    }
    if (layer.kind == LayerKind::kConvolution || layer.kind == LayerKind::kPooling) {
      out += strings::format("  k=%zux%zu s=%zu", layer.kernel_h, layer.kernel_w,
                             layer.stride);
    }
    if (layer.activation != Activation::kNone) {
      out += " +";
      out += to_string(layer.activation);
    }
    if (!layer.inputs.empty()) {
      out += "  <- ";
      for (std::size_t j = 0; j < layer.inputs.size(); ++j) {
        if (j > 0) {
          out += ",";
        }
        out += layer.inputs[j];
      }
    }
    out += "\n";
  }
  return out;
}

Result<ParameterShapes> parameter_shapes(const LayerSpec& layer, const Shape& input) {
  ParameterShapes out;
  switch (layer.kind) {
    case LayerKind::kConvolution:
      if (input.rank() != 3) {
        return invalid_input("convolution parameters require CHW input shape");
      }
      out.weights = Shape{layer.num_output, input[0], layer.kernel_h, layer.kernel_w};
      break;
    case LayerKind::kInnerProduct:
      out.weights = Shape{layer.num_output, input.element_count()};
      break;
    default:
      return invalid_input("layer '" + layer.name + "' has no parameters");
  }
  if (layer.has_bias) {
    out.bias = Shape{layer.num_output};
  }
  return out;
}

}  // namespace condor::nn

#include "nn/network.hpp"

#include <set>

#include "common/strings.hpp"

namespace condor::nn {

const LayerSpec* Network::find_layer(std::string_view name) const noexcept {
  for (const LayerSpec& layer : layers_) {
    if (layer.name == name) {
      return &layer;
    }
  }
  return nullptr;
}

Status Network::validate() const {
  if (layers_.empty()) {
    return invalid_input("network '" + name_ + "' has no layers");
  }
  if (layers_.front().kind != LayerKind::kInput) {
    return invalid_input("first layer must be an input layer");
  }
  std::set<std::string> names;
  bool classifier_started = false;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const LayerSpec& layer = layers_[i];
    if (layer.name.empty()) {
      return invalid_input(strings::format("layer %zu has an empty name", i));
    }
    if (!names.insert(layer.name).second) {
      return invalid_input("duplicate layer name '" + layer.name + "'");
    }
    switch (layer.kind) {
      case LayerKind::kInput:
        if (i != 0) {
          return invalid_input("input layer '" + layer.name +
                               "' must be the first layer");
        }
        if (layer.input_channels == 0 || layer.input_height == 0 ||
            layer.input_width == 0) {
          return invalid_input("input layer '" + layer.name +
                               "' must declare a non-empty CHW shape");
        }
        break;
      case LayerKind::kConvolution:
        if (classifier_started) {
          return invalid_input("convolution '" + layer.name +
                               "' cannot follow an inner-product layer");
        }
        if (layer.num_output == 0) {
          return invalid_input("convolution '" + layer.name +
                               "' must have num_output > 0");
        }
        if (layer.kernel_h == 0 || layer.kernel_w == 0 || layer.stride == 0) {
          return invalid_input("convolution '" + layer.name +
                               "' has invalid window geometry");
        }
        break;
      case LayerKind::kPooling:
        if (classifier_started) {
          return invalid_input("pooling '" + layer.name +
                               "' cannot follow an inner-product layer");
        }
        if (layer.kernel_h == 0 || layer.kernel_w == 0 || layer.stride == 0) {
          return invalid_input("pooling '" + layer.name +
                               "' has invalid window geometry");
        }
        if (layer.pad != 0) {
          // Same rejection (and status code) as nn::forward_pooling: the
          // zero border is wrong for max pooling, so a padded pooling spec
          // is an input error, not a backend limitation.
          return invalid_input("pooling '" + layer.name +
                               "' with padding is not supported");
        }
        break;
      case LayerKind::kInnerProduct:
        classifier_started = true;
        if (layer.num_output == 0) {
          return invalid_input("inner product '" + layer.name +
                               "' must have num_output > 0");
        }
        break;
      case LayerKind::kActivation:
        if (layer.activation == Activation::kNone) {
          return invalid_input("activation layer '" + layer.name +
                               "' must name a function");
        }
        break;
      case LayerKind::kSoftmax:
        if (i + 1 != layers_.size()) {
          return invalid_input("softmax '" + layer.name +
                               "' must be the final layer");
        }
        break;
    }
  }
  return Status::ok();
}

Result<std::vector<LayerShapes>> Network::infer_shapes() const {
  CONDOR_RETURN_IF_ERROR(validate());
  std::vector<LayerShapes> shapes;
  shapes.reserve(layers_.size());
  Shape current;
  for (const LayerSpec& layer : layers_) {
    LayerShapes entry;
    entry.input = current;
    switch (layer.kind) {
      case LayerKind::kInput:
        entry.input = Shape{};
        entry.output =
            Shape{layer.input_channels, layer.input_height, layer.input_width};
        break;
      case LayerKind::kConvolution: {
        if (current.rank() != 3) {
          return invalid_input("convolution '" + layer.name +
                               "' requires a CHW input");
        }
        CONDOR_ASSIGN_OR_RETURN(
            std::size_t out_h,
            window_output_extent(current[1], layer.kernel_h, layer.stride, layer.pad));
        CONDOR_ASSIGN_OR_RETURN(
            std::size_t out_w,
            window_output_extent(current[2], layer.kernel_w, layer.stride, layer.pad));
        entry.output = Shape{layer.num_output, out_h, out_w};
        break;
      }
      case LayerKind::kPooling: {
        if (current.rank() != 3) {
          return invalid_input("pooling '" + layer.name + "' requires a CHW input");
        }
        CONDOR_ASSIGN_OR_RETURN(
            std::size_t out_h,
            window_output_extent(current[1], layer.kernel_h, layer.stride, 0));
        CONDOR_ASSIGN_OR_RETURN(
            std::size_t out_w,
            window_output_extent(current[2], layer.kernel_w, layer.stride, 0));
        entry.output = Shape{current[0], out_h, out_w};
        break;
      }
      case LayerKind::kInnerProduct:
        // Implicit flatten of whatever precedes, as in Caffe.
        entry.output = Shape{layer.num_output};
        break;
      case LayerKind::kActivation:
      case LayerKind::kSoftmax:
        entry.output = current;
        break;
    }
    current = entry.output;
    shapes.push_back(std::move(entry));
  }
  return shapes;
}

Result<Shape> Network::input_shape() const {
  CONDOR_RETURN_IF_ERROR(validate());
  const LayerSpec& input = layers_.front();
  return Shape{input.input_channels, input.input_height, input.input_width};
}

Result<Shape> Network::output_shape() const {
  CONDOR_ASSIGN_OR_RETURN(auto shapes, infer_shapes());
  return shapes.back().output;
}

Result<std::uint64_t> Network::total_flops() const {
  CONDOR_ASSIGN_OR_RETURN(auto shapes, infer_shapes());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    total += layer_flops(layers_[i], shapes[i].input, shapes[i].output);
  }
  return total;
}

Result<std::uint64_t> Network::feature_extraction_flops() const {
  CONDOR_ASSIGN_OR_RETURN(auto shapes, infer_shapes());
  const std::size_t end = classifier_begin();
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < end; ++i) {
    total += layer_flops(layers_[i], shapes[i].input, shapes[i].output);
  }
  return total;
}

Result<std::uint64_t> Network::parameter_count() const {
  CONDOR_ASSIGN_OR_RETURN(auto shapes, infer_shapes());
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (!layers_[i].has_weights()) {
      continue;
    }
    CONDOR_ASSIGN_OR_RETURN(auto params,
                            parameter_shapes(layers_[i], shapes[i].input));
    total += params.weights.element_count();
    if (params.bias.rank() > 0) {
      total += params.bias.element_count();
    }
  }
  return total;
}

std::size_t Network::classifier_begin() const noexcept {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i].kind == LayerKind::kInnerProduct) {
      return i;
    }
  }
  return layers_.size();
}

Network Network::feature_extraction_prefix() const {
  Network prefix(name_ + "-features");
  const std::size_t end = classifier_begin();
  for (std::size_t i = 0; i < end; ++i) {
    prefix.add(layers_[i]);
  }
  return prefix;
}

std::string Network::summary() const {
  std::string out = "network '" + name_ + "' (" +
                    std::to_string(layers_.size()) + " layers)\n";
  auto shapes_result = infer_shapes();
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const LayerSpec& layer = layers_[i];
    out += strings::format("  [%2zu] %-14s %-14s", i,
                           std::string(to_string(layer.kind)).c_str(),
                           layer.name.c_str());
    if (shapes_result.is_ok()) {
      const LayerShapes& shapes = shapes_result.value()[i];
      // Separate appends: the operator+ temporary chain trips GCC 12's
      // -Wrestrict false positive (PR105651) under -O3 -Werror.
      out += ' ';
      out += shapes.input.to_string();
      out += " -> ";
      out += shapes.output.to_string();
    }
    if (layer.kind == LayerKind::kConvolution || layer.kind == LayerKind::kPooling) {
      out += strings::format("  k=%zux%zu s=%zu", layer.kernel_h, layer.kernel_w,
                             layer.stride);
    }
    if (layer.activation != Activation::kNone) {
      out += " +";
      out += to_string(layer.activation);
    }
    out += "\n";
  }
  return out;
}

Result<ParameterShapes> parameter_shapes(const LayerSpec& layer, const Shape& input) {
  ParameterShapes out;
  switch (layer.kind) {
    case LayerKind::kConvolution:
      if (input.rank() != 3) {
        return invalid_input("convolution parameters require CHW input shape");
      }
      out.weights = Shape{layer.num_output, input[0], layer.kernel_h, layer.kernel_w};
      break;
    case LayerKind::kInnerProduct:
      out.weights = Shape{layer.num_output, input.element_count()};
      break;
    default:
      return invalid_input("layer '" + layer.name + "' has no parameters");
  }
  if (layer.has_bias) {
    out.bias = Shape{layer.num_output};
  }
  return out;
}

}  // namespace condor::nn

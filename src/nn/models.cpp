#include "nn/models.hpp"

#include "common/strings.hpp"

namespace condor::nn {
namespace {

LayerSpec input_layer(std::size_t channels, std::size_t height, std::size_t width) {
  LayerSpec layer;
  layer.name = "data";
  layer.kind = LayerKind::kInput;
  layer.input_channels = channels;
  layer.input_height = height;
  layer.input_width = width;
  return layer;
}

LayerSpec conv(std::string name, std::size_t num_output, std::size_t kernel,
               Activation activation = Activation::kNone, std::size_t stride = 1,
               std::size_t pad = 0) {
  LayerSpec layer;
  layer.name = std::move(name);
  layer.kind = LayerKind::kConvolution;
  layer.num_output = num_output;
  layer.kernel_h = kernel;
  layer.kernel_w = kernel;
  layer.stride = stride;
  layer.pad = pad;
  layer.activation = activation;
  return layer;
}

LayerSpec pool(std::string name, PoolMethod method, std::size_t kernel = 2,
               std::size_t stride = 2) {
  LayerSpec layer;
  layer.name = std::move(name);
  layer.kind = LayerKind::kPooling;
  layer.pool_method = method;
  layer.kernel_h = kernel;
  layer.kernel_w = kernel;
  layer.stride = stride;
  return layer;
}

LayerSpec fc(std::string name, std::size_t num_output,
             Activation activation = Activation::kNone) {
  LayerSpec layer;
  layer.name = std::move(name);
  layer.kind = LayerKind::kInnerProduct;
  layer.num_output = num_output;
  layer.activation = activation;
  return layer;
}

LayerSpec softmax(std::string name) {
  LayerSpec layer;
  layer.name = std::move(name);
  layer.kind = LayerKind::kSoftmax;
  return layer;
}

/// Rebinds a layer's producer away from the implicit chain.
LayerSpec from(LayerSpec layer, std::string producer) {
  layer.inputs = {std::move(producer)};
  return layer;
}

LayerSpec eltwise_add(std::string name, std::string a, std::string b,
                      Activation activation = Activation::kNone) {
  LayerSpec layer;
  layer.name = std::move(name);
  layer.kind = LayerKind::kEltwiseAdd;
  layer.inputs = {std::move(a), std::move(b)};
  layer.activation = activation;
  return layer;
}

LayerSpec concat(std::string name, std::string a, std::string b) {
  LayerSpec layer;
  layer.name = std::move(name);
  layer.kind = LayerKind::kConcat;
  layer.inputs = {std::move(a), std::move(b)};
  return layer;
}

}  // namespace

Network make_tc1() {
  Network net("tc1");
  net.add(input_layer(1, 16, 16));
  net.add(conv("conv1", 6, 3, Activation::kTanH));       // 6 @ 14x14
  net.add(pool("pool1", PoolMethod::kAverage));          // 6 @ 7x7
  net.add(conv("conv2", 12, 4, Activation::kTanH));      // 12 @ 4x4
  net.add(pool("pool2", PoolMethod::kAverage));          // 12 @ 2x2
  net.add(fc("ip1", 10));                                // 10 classes (USPS digits)
  net.add(softmax("prob"));
  return net;
}

Network make_lenet() {
  // Mirrors BVLC caffe/examples/mnist/lenet.prototxt (deploy topology).
  Network net("lenet");
  net.add(input_layer(1, 28, 28));
  net.add(conv("conv1", 20, 5));                         // 20 @ 24x24
  net.add(pool("pool1", PoolMethod::kMax));              // 20 @ 12x12
  net.add(conv("conv2", 50, 5));                         // 50 @ 8x8
  net.add(pool("pool2", PoolMethod::kMax));              // 50 @ 4x4
  net.add(fc("ip1", 500, Activation::kReLU));
  net.add(fc("ip2", 10));
  net.add(softmax("prob"));
  return net;
}

Network make_vgg16() {
  Network net("vgg16");
  net.add(input_layer(3, 224, 224));
  const struct {
    const char* prefix;
    std::size_t convs;
    std::size_t channels;
  } blocks[] = {
      {"conv1", 2, 64}, {"conv2", 2, 128}, {"conv3", 3, 256},
      {"conv4", 3, 512}, {"conv5", 3, 512},
  };
  for (const auto& block : blocks) {
    for (std::size_t i = 1; i <= block.convs; ++i) {
      net.add(conv(strings::format("%s_%zu", block.prefix, i), block.channels, 3,
                   Activation::kReLU, /*stride=*/1, /*pad=*/1));
    }
    net.add(pool(strings::format("pool%c", block.prefix[4]), PoolMethod::kMax));
  }
  net.add(fc("fc6", 4096, Activation::kReLU));
  net.add(fc("fc7", 4096, Activation::kReLU));
  net.add(fc("fc8", 1000));
  net.add(softmax("prob"));
  return net;
}

Network make_tiny_resnet() {
  // Stem -> two residual blocks -> concat head over both block outputs.
  // Every DAG feature at unit-test scale: the stem and first block output
  // each feed two consumers (fan-out), the eltwise adds join equal-shaped
  // blobs, and the concat head joins along channels.
  Network net("tiny-resnet");
  net.add(input_layer(3, 16, 16));
  net.add(conv("stem", 8, 3, Activation::kReLU, 1, 1));   // 8 @ 16x16
  net.add(conv("b1c1", 8, 3, Activation::kReLU, 1, 1));   // 8 @ 16x16
  net.add(conv("b1c2", 8, 3, Activation::kNone, 1, 1));   // 8 @ 16x16
  net.add(eltwise_add("b1add", "stem", "b1c2", Activation::kReLU));
  net.add(from(conv("b2c1", 8, 3, Activation::kReLU, 1, 1), "b1add"));
  net.add(conv("b2c2", 8, 3, Activation::kNone, 1, 1));   // 8 @ 16x16
  net.add(eltwise_add("b2add", "b1add", "b2c2", Activation::kReLU));
  net.add(concat("head", "b1add", "b2add"));              // 16 @ 16x16
  net.add(pool("pool", PoolMethod::kMax));                // 16 @ 8x8
  net.add(fc("ip1", 10));
  net.add(softmax("prob"));
  return net;
}

Network make_lenet_skip() {
  // LeNet's front half with a residual shortcut around a padded 3x3
  // convolution of pool1 — the smallest realistic skip connection.
  Network net("lenet-skip");
  net.add(input_layer(1, 28, 28));
  net.add(conv("conv1", 20, 5));                          // 20 @ 24x24
  net.add(pool("pool1", PoolMethod::kMax));               // 20 @ 12x12
  net.add(conv("conv2", 20, 3, Activation::kReLU, 1, 1)); // 20 @ 12x12
  net.add(eltwise_add("skip", "pool1", "conv2", Activation::kReLU));
  net.add(pool("pool2", PoolMethod::kMax));               // 20 @ 6x6
  net.add(fc("ip1", 500, Activation::kReLU));
  net.add(fc("ip2", 10));
  net.add(softmax("prob"));
  return net;
}

Result<Network> make_model(std::string_view name) {
  const std::string lower = strings::to_lower(name);
  if (lower == "tc1") {
    return make_tc1();
  }
  if (lower == "lenet") {
    return make_lenet();
  }
  if (lower == "vgg16" || lower == "vgg-16") {
    return make_vgg16();
  }
  if (lower == "tiny_resnet" || lower == "tiny-resnet" || lower == "resnet") {
    return make_tiny_resnet();
  }
  if (lower == "lenet_skip" || lower == "lenet-skip") {
    return make_lenet_skip();
  }
  return not_found("unknown model '" + std::string(name) + "'");
}

}  // namespace condor::nn

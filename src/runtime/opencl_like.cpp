#include "runtime/opencl_like.hpp"

#include <cstring>

#include "common/strings.hpp"
#include "json/json.hpp"

namespace condor::runtime::ocl {

std::vector<Device> get_devices() {
  std::vector<Device> devices;
  for (const hw::BoardSpec& board : hw::board_database()) {
    Device device;
    device.board = board;
    device.name = board.cloud
                      ? "xilinx:aws-vu9p-f1:4ddr-xpr-2pr:4.0"
                      : strings::format("xilinx:%s:1.0", board.id.c_str());
    devices.push_back(std::move(device));
  }
  return devices;
}

Result<Device> get_device(std::string_view board_id) {
  for (Device& device : get_devices()) {
    if (device.board.id == board_id) {
      return device;
    }
  }
  return not_found("no device for board '" + std::string(board_id) + "'");
}

Result<Program> Program::create_with_binary(Context& context,
                                            std::span<const std::byte> binary) {
  Program program;
  CONDOR_ASSIGN_OR_RETURN(program.xclbin_, Xclbin::deserialize(binary));

  // The binary must target the context's device.
  CONDOR_ASSIGN_OR_RETURN(std::string meta_text,
                          program.xclbin_.text_section("meta.json"));
  CONDOR_ASSIGN_OR_RETURN(json::Value meta, json::parse(meta_text));
  if (const json::Value* board = meta.object().find("board"); board != nullptr) {
    CONDOR_ASSIGN_OR_RETURN(std::string board_id, board->as_string());
    if (board_id != context.device().board.id) {
      return invalid_input(strings::format(
          "xclbin targets board '%s' but the context device is '%s'",
          board_id.c_str(), context.device().board.id.c_str()));
    }
  }
  if (const json::Value* kernel = meta.object().find("kernel"); kernel != nullptr) {
    CONDOR_ASSIGN_OR_RETURN(program.kernel_name_, kernel->as_string());
  }

  CONDOR_ASSIGN_OR_RETURN(LoadedKernel loaded,
                          LoadedKernel::from_xclbin(program.xclbin_));
  program.kernel_ = std::make_shared<LoadedKernel>(std::move(loaded));
  return program;
}

Kernel::Kernel(Program& program, std::string name)
    : device_kernel_(program.device_kernel()), name_(std::move(name)) {}

Status Kernel::set_arg(std::uint32_t index, Buffer& buffer) {
  switch (index) {
    case 0:
      input_ = &buffer;
      return Status::ok();
    case 1:
      output_ = &buffer;
      return Status::ok();
    case 2:
      weights_ = &buffer;
      return Status::ok();
    default:
      return invalid_input(
          strings::format("kernel arg %u is not a buffer argument", index));
  }
}

Status Kernel::set_arg(std::uint32_t index, std::int32_t scalar) {
  if (index != 3) {
    return invalid_input(
        strings::format("kernel arg %u is not a scalar argument", index));
  }
  if (scalar <= 0) {
    return invalid_input("batch must be positive");
  }
  batch_ = scalar;
  return Status::ok();
}

Status CommandQueue::enqueue_write_buffer(Buffer& buffer, std::size_t offset,
                                          std::span<const std::byte> data) {
  if (offset + data.size() > buffer.size()) {
    return invalid_input("write exceeds buffer size");
  }
  std::memcpy(buffer.bytes().data() + offset, data.data(), data.size());
  return Status::ok();
}

Status CommandQueue::enqueue_read_buffer(const Buffer& buffer, std::size_t offset,
                                         std::span<std::byte> out) {
  if (offset + out.size() > buffer.size()) {
    return invalid_input("read exceeds buffer size");
  }
  std::memcpy(out.data(), buffer.bytes().data() + offset, out.size());
  return Status::ok();
}

Result<KernelStats> CommandQueue::enqueue_task(Kernel& kernel) {
  if (kernel.device_kernel_ == nullptr) {
    return internal_error("kernel is not bound to a program");
  }
  if (kernel.input_ == nullptr || kernel.output_ == nullptr ||
      kernel.weights_ == nullptr || kernel.batch_ <= 0) {
    return invalid_input("kernel arguments incomplete (need in/out/weights/batch)");
  }
  LoadedKernel& device = *kernel.device_kernel_;

  // The weight buffer carries a Condor weight file image ("loaded
  // dynamically at runtime", paper §3.1.1).
  CONDOR_RETURN_IF_ERROR(device.load_weights(kernel.weights_->bytes()));

  CONDOR_ASSIGN_OR_RETURN(Shape input_shape,
                          device.plan().source.net.input_shape());
  const std::size_t image_floats = input_shape.element_count();
  const auto batch = static_cast<std::size_t>(kernel.batch_);
  if (kernel.input_->size() < batch * image_floats * sizeof(float)) {
    return invalid_input("input buffer smaller than batch * image size");
  }

  std::vector<Tensor> inputs;
  inputs.reserve(batch);
  const auto* in_floats =
      reinterpret_cast<const float*>(kernel.input_->bytes().data());
  for (std::size_t i = 0; i < batch; ++i) {
    Tensor image(input_shape);
    std::memcpy(image.raw(), in_floats + i * image_floats,
                image_floats * sizeof(float));
    inputs.push_back(std::move(image));
  }

  CONDOR_ASSIGN_OR_RETURN(std::vector<Tensor> outputs, device.run(inputs));

  const std::size_t out_floats = outputs.front().size();
  if (kernel.output_->size() < batch * out_floats * sizeof(float)) {
    return invalid_input("output buffer smaller than batch * result size");
  }
  auto* out_bytes = kernel.output_->bytes().data();
  for (std::size_t i = 0; i < batch; ++i) {
    std::memcpy(out_bytes + i * out_floats * sizeof(float), outputs[i].raw(),
                out_floats * sizeof(float));
  }
  return device.last_stats();
}

}  // namespace condor::runtime::ocl

#include "runtime/opencl_like.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "json/json.hpp"

namespace condor::runtime::ocl {

std::vector<Device> get_devices() {
  std::vector<Device> devices;
  for (const hw::BoardSpec& board : hw::board_database()) {
    Device device;
    device.board = board;
    device.name = board.cloud
                      ? "xilinx:aws-vu9p-f1:4ddr-xpr-2pr:4.0"
                      : strings::format("xilinx:%s:1.0", board.id.c_str());
    devices.push_back(std::move(device));
  }
  return devices;
}

Result<Device> get_device(std::string_view board_id) {
  for (Device& device : get_devices()) {
    if (device.board.id == board_id) {
      return device;
    }
  }
  return not_found("no device for board '" + std::string(board_id) + "'");
}

Result<Program> Program::create_with_binary(Context& context,
                                            std::span<const std::byte> binary) {
  Program program;
  CONDOR_ASSIGN_OR_RETURN(program.xclbin_, Xclbin::deserialize(binary));

  // The binary must target the context's device.
  CONDOR_ASSIGN_OR_RETURN(std::string meta_text,
                          program.xclbin_.text_section("meta.json"));
  CONDOR_ASSIGN_OR_RETURN(json::Value meta, json::parse(meta_text));
  if (const json::Value* board = meta.object().find("board"); board != nullptr) {
    CONDOR_ASSIGN_OR_RETURN(std::string board_id, board->as_string());
    if (board_id != context.device().board.id) {
      return invalid_input(strings::format(
          "xclbin targets board '%s' but the context device is '%s'",
          board_id.c_str(), context.device().board.id.c_str()));
    }
  }
  if (const json::Value* kernel = meta.object().find("kernel"); kernel != nullptr) {
    CONDOR_ASSIGN_OR_RETURN(program.kernel_name_, kernel->as_string());
  }

  CONDOR_ASSIGN_OR_RETURN(LoadedKernel loaded,
                          LoadedKernel::from_xclbin(program.xclbin_));
  program.kernel_ = std::make_shared<LoadedKernel>(std::move(loaded));
  return program;
}

Kernel::Kernel(Program& program, std::string name)
    : device_kernel_(program.device_kernel()), name_(std::move(name)) {}

Status Kernel::set_arg(std::uint32_t index, Buffer& buffer) {
  switch (index) {
    case 0:
      input_ = &buffer;
      return Status::ok();
    case 1:
      output_ = &buffer;
      return Status::ok();
    case 2:
      weights_ = &buffer;
      return Status::ok();
    default:
      return invalid_input(
          strings::format("kernel arg %u is not a buffer argument", index));
  }
}

Status Kernel::set_arg(std::uint32_t index, std::int32_t scalar) {
  if (index != 3) {
    return invalid_input(
        strings::format("kernel arg %u is not a scalar argument", index));
  }
  if (scalar <= 0) {
    return invalid_input("batch must be positive");
  }
  batch_ = scalar;
  return Status::ok();
}

// ---------------------------------------------------------------------------
// Event

void Event::wait() const {
  if (shared_ == nullptr) {
    return;
  }
  std::unique_lock<std::mutex> lock(shared_->mutex);
  shared_->cv.wait(lock, [&] { return shared_->done; });
}

bool Event::is_complete() const {
  if (shared_ == nullptr) {
    return true;
  }
  std::lock_guard<std::mutex> lock(shared_->mutex);
  return shared_->done;
}

Status Event::status() const {
  if (shared_ == nullptr) {
    return Status::ok();
  }
  std::unique_lock<std::mutex> lock(shared_->mutex);
  shared_->cv.wait(lock, [&] { return shared_->done; });
  return shared_->status;
}

Result<KernelStats> Event::kernel_stats() const {
  if (shared_ == nullptr) {
    return invalid_input("event is not a kernel task event");
  }
  std::unique_lock<std::mutex> lock(shared_->mutex);
  shared_->cv.wait(lock, [&] { return shared_->done; });
  CONDOR_RETURN_IF_ERROR(shared_->status);
  if (!shared_->stats.has_value()) {
    return invalid_input("event is not a kernel task event");
  }
  return *shared_->stats;
}

// ---------------------------------------------------------------------------
// CommandQueue

CommandQueue::CommandQueue(Context& context, QueueProperties properties)
    : context_(&context) {
  // One worker keeps an in-order queue strictly FIFO. An out-of-order queue
  // drains with a few workers so independent commands genuinely overlap;
  // more than the host budget (capped small — commands are coarse) only
  // adds contention.
  const std::size_t workers =
      properties.out_of_order
          ? std::min<std::size_t>(4, std::max<std::size_t>(2, thread_budget()))
          : 1;
  workers_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

CommandQueue::~CommandQueue() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void CommandQueue::worker_loop() {
  for (;;) {
    Command command;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] { return stopping_ || !pending_.empty(); });
      if (pending_.empty()) {
        return;  // stopping and fully drained
      }
      command = std::move(pending_.front());
      pending_.pop_front();
      ++in_flight_;
    }

    // Dependencies first. Safe: every waited event belongs to a command
    // enqueued before this one, and FIFO claiming means that command is
    // already being executed by some worker (see the header's deadlock
    // argument). A failed dependency fails this command without running it.
    Status status = Status::ok();
    for (const Event& dependency : command.waits) {
      const Status dep_status = dependency.status();
      if (!dep_status.is_ok()) {
        status = Status(dep_status.code(),
                        "dependency failed: " + dep_status.message());
        break;
      }
    }
    std::optional<KernelStats> stats;
    if (status.is_ok()) {
      status = command.body(stats);
    }

    {
      std::lock_guard<std::mutex> lock(command.completion->mutex);
      command.completion->done = true;
      command.completion->status = status;
      command.completion->stats = std::move(stats);
    }
    command.completion->cv.notify_all();

    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (!status.is_ok() && deferred_error_.is_ok()) {
        deferred_error_ = status;
      }
      if (pending_.empty() && in_flight_ == 0) {
        queue_idle_.notify_all();
      }
    }
  }
}

Event CommandQueue::submit(
    std::function<Status(std::optional<KernelStats>&)> body,
    std::vector<Event> waits) {
  auto completion = std::make_shared<Event::Shared>();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.push_back(
        Command{std::move(body), std::move(waits), completion});
  }
  work_ready_.notify_one();
  return Event(std::move(completion));
}

Status CommandQueue::finish() {
  std::unique_lock<std::mutex> lock(mutex_);
  queue_idle_.wait(lock, [&] { return pending_.empty() && in_flight_ == 0; });
  Status first = std::move(deferred_error_);
  deferred_error_ = Status::ok();
  return first;
}

Result<Event> CommandQueue::enqueue_write_buffer(Buffer& buffer,
                                                std::size_t offset,
                                                std::span<const std::byte> data,
                                                std::vector<Event> wait_events) {
  if (offset > buffer.size() || data.size() > buffer.size() - offset) {
    return invalid_input(strings::format(
        "write of %zu bytes at offset %zu overruns buffer of %zu bytes",
        data.size(), offset, buffer.size()));
  }
  // Stage the source bytes now so the caller's span may be released the
  // moment this returns — the non-blocking write a double-buffered host
  // loop needs.
  std::vector<std::byte> staged(data.begin(), data.end());
  std::byte* destination = buffer.bytes().data() + offset;
  return submit(
      [staged = std::move(staged), destination](std::optional<KernelStats>&) {
        std::memcpy(destination, staged.data(), staged.size());
        return Status::ok();
      },
      std::move(wait_events));
}

Result<Event> CommandQueue::enqueue_read_buffer(const Buffer& buffer,
                                                std::size_t offset,
                                                std::span<std::byte> out,
                                                std::vector<Event> wait_events) {
  if (offset > buffer.size() || out.size() > buffer.size() - offset) {
    return invalid_input(strings::format(
        "read of %zu bytes at offset %zu overruns buffer of %zu bytes",
        out.size(), offset, buffer.size()));
  }
  const std::byte* source = buffer.bytes().data() + offset;
  return submit(
      [source, out](std::optional<KernelStats>&) {
        std::memcpy(out.data(), source, out.size());
        return Status::ok();
      },
      std::move(wait_events));
}

Result<Event> CommandQueue::enqueue_task(Kernel& kernel,
                                         std::vector<Event> wait_events) {
  if (kernel.device_kernel_ == nullptr) {
    return internal_error("kernel is not bound to a program");
  }
  if (kernel.input_ == nullptr || kernel.output_ == nullptr ||
      kernel.weights_ == nullptr || kernel.batch_ <= 0) {
    return invalid_input("kernel arguments incomplete (need in/out/weights/batch)");
  }
  // Snapshot the argument bindings: later set_arg calls must not affect a
  // command already in flight (clSetKernelArg semantics).
  const std::shared_ptr<LoadedKernel> device = kernel.device_kernel_;
  Buffer* const input = kernel.input_;
  Buffer* const output = kernel.output_;
  Buffer* const weights = kernel.weights_;
  const auto batch = static_cast<std::size_t>(kernel.batch_);

  return submit(
      [device, input, output, weights, batch](std::optional<KernelStats>& stats)
          -> Status {
        // The weight buffer carries a Condor weight file image ("loaded
        // dynamically at runtime", paper §3.1.1).
        CONDOR_RETURN_IF_ERROR(device->load_weights(weights->bytes()));

        CONDOR_ASSIGN_OR_RETURN(Shape input_shape,
                                device->plan().source.net.input_shape());
        const std::size_t image_floats = input_shape.element_count();
        if (input->size() < batch * image_floats * sizeof(float)) {
          return invalid_input("input buffer smaller than batch * image size");
        }

        std::vector<Tensor> inputs;
        inputs.reserve(batch);
        const auto* in_floats =
            reinterpret_cast<const float*>(input->bytes().data());
        for (std::size_t i = 0; i < batch; ++i) {
          Tensor image(input_shape);
          std::memcpy(image.raw(), in_floats + i * image_floats,
                      image_floats * sizeof(float));
          inputs.push_back(std::move(image));
        }

        KernelStats run_stats;
        CONDOR_ASSIGN_OR_RETURN(std::vector<Tensor> outputs,
                                device->run(inputs, &run_stats));

        const std::size_t out_floats = outputs.front().size();
        if (output->size() < batch * out_floats * sizeof(float)) {
          return invalid_input("output buffer smaller than batch * result size");
        }
        auto* out_bytes = output->bytes().data();
        for (std::size_t i = 0; i < batch; ++i) {
          std::memcpy(out_bytes + i * out_floats * sizeof(float),
                      outputs[i].raw(), out_floats * sizeof(float));
        }
        stats = run_stats;
        return Status::ok();
      },
      std::move(wait_events));
}

}  // namespace condor::runtime::ocl

// SDAccel-style OpenCL host API (the backend integration of paper §3.1.3).
//
// A deliberately small, typed replica of the host-side OpenCL flow SDAccel
// applications use: enumerate devices, create a context, program the device
// with an xclbin, create buffers, set kernel args, enqueue. The generated
// "default host code" (flow step 7) targets exactly this API, so a user's
// host program reads like its SDAccel counterpart:
//
//   auto devices = ocl::get_devices();
//   ocl::Context ctx(devices[0]);
//   auto program = ocl::Program::create_with_binary(ctx, xclbin_bytes);
//   ocl::Kernel kernel(program, "lenet_top");
//   ocl::Buffer in(ctx, bytes), out(ctx, bytes), weights(ctx, bytes);
//   ocl::CommandQueue queue(ctx);
//   queue.enqueue_write_buffer(in, ...); kernel.set_arg(0, in); ...
//   queue.enqueue_task(kernel); queue.finish();
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "hw/board.hpp"
#include "runtime/kernel_runner.hpp"
#include "runtime/xclbin.hpp"

namespace condor::runtime::ocl {

/// An accelerator device visible to the host.
struct Device {
  std::string name;     ///< e.g. "xilinx:aws-vu9p-f1:4ddr-xpr-2pr"
  hw::BoardSpec board;
};

/// Enumerates the platform's devices (one per known board).
std::vector<Device> get_devices();

/// Finds a device by board id ("aws-f1", "zc706", ...).
Result<Device> get_device(std::string_view board_id);

class Context {
 public:
  explicit Context(Device device) : device_(std::move(device)) {}
  [[nodiscard]] const Device& device() const noexcept { return device_; }

 private:
  Device device_;
};

/// A device-side buffer (simulated device DDR).
class Buffer {
 public:
  Buffer(Context& context, std::size_t bytes)
      : storage_(bytes), context_(&context) {}

  [[nodiscard]] std::size_t size() const noexcept { return storage_.size(); }
  [[nodiscard]] std::span<std::byte> bytes() noexcept { return storage_; }
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept { return storage_; }

 private:
  std::vector<std::byte> storage_;
  Context* context_;
};

/// A programmed binary. Holds the parsed container and the device kernel
/// reconstructed from it (shared so Kernel objects stay cheap).
class Program {
 public:
  static Result<Program> create_with_binary(Context& context,
                                            std::span<const std::byte> binary);

  [[nodiscard]] const Xclbin& xclbin() const noexcept { return xclbin_; }
  [[nodiscard]] const std::shared_ptr<LoadedKernel>& device_kernel() const noexcept {
    return kernel_;
  }
  [[nodiscard]] const std::string& kernel_name() const noexcept {
    return kernel_name_;
  }

 private:
  Xclbin xclbin_;
  std::shared_ptr<LoadedKernel> kernel_;
  std::string kernel_name_;
};

/// Kernel argument indices follow the generated kernel.xml:
///   0 = input buffer, 1 = output buffer, 2 = weight buffer, 3 = batch.
class Kernel {
 public:
  Kernel(Program& program, std::string name);

  Status set_arg(std::uint32_t index, Buffer& buffer);
  Status set_arg(std::uint32_t index, std::int32_t scalar);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  friend class CommandQueue;
  std::shared_ptr<LoadedKernel> device_kernel_;
  std::string name_;
  Buffer* input_ = nullptr;
  Buffer* output_ = nullptr;
  Buffer* weights_ = nullptr;
  std::int32_t batch_ = 0;
};

/// In-order synchronous command queue.
class CommandQueue {
 public:
  explicit CommandQueue(Context& context) : context_(&context) {}

  Status enqueue_write_buffer(Buffer& buffer, std::size_t offset,
                              std::span<const std::byte> data);
  Status enqueue_read_buffer(const Buffer& buffer, std::size_t offset,
                             std::span<std::byte> out);

  /// Executes the kernel: loads the weight buffer into the accelerator,
  /// streams the input buffer through the spatial pipeline, writes results
  /// to the output buffer, and returns device-time statistics.
  Result<KernelStats> enqueue_task(Kernel& kernel);

  /// All operations are synchronous; finish() exists for API parity.
  void finish() noexcept {}

 private:
  Context* context_;
};

}  // namespace condor::runtime::ocl

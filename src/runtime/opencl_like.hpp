// SDAccel-style OpenCL host API (the backend integration of paper §3.1.3).
//
// A deliberately small, typed replica of the host-side OpenCL flow SDAccel
// applications use: enumerate devices, create a context, program the device
// with an xclbin, create buffers, set kernel args, enqueue. The generated
// "default host code" (flow step 7) targets exactly this API, so a user's
// host program reads like its SDAccel counterpart:
//
//   auto devices = ocl::get_devices();
//   ocl::Context ctx(devices[0]);
//   auto program = ocl::Program::create_with_binary(ctx, xclbin_bytes);
//   ocl::Kernel kernel(program, "lenet_top");
//   ocl::Buffer in(ctx, bytes), out(ctx, bytes), weights(ctx, bytes);
//   ocl::CommandQueue queue(ctx);
//   auto write = queue.enqueue_write_buffer(in, ...); kernel.set_arg(0, in); ...
//   auto task = queue.enqueue_task(kernel, {write.value()});
//   auto read = queue.enqueue_read_buffer(out, ..., {task.value()});
//   queue.finish();
//
// The queue is genuinely asynchronous, mirroring the OpenCL event model:
// every enqueue_* returns an Event immediately and the operation runs on a
// queue worker thread. An in-order queue (the default) executes commands in
// enqueue order; a QueueProperties{.out_of_order = true} queue orders
// commands only by their explicit wait lists, so independent transfers and
// kernel invocations overlap — the double-buffered host pattern enqueues
// the write of batch k+1 while the task of batch k computes. Events chain
// across queues, exactly like cl_event.
//
// Deadlock freedom: a wait list can only name events of commands enqueued
// *earlier* (an Event only exists once its command is enqueued), and each
// queue's workers claim commands in FIFO order — so every dependency of a
// claimed command has itself been claimed (on this queue or another), and
// progress is guaranteed for any DAG the API can express.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "hw/board.hpp"
#include "runtime/kernel_runner.hpp"
#include "runtime/xclbin.hpp"

namespace condor::runtime::ocl {

/// An accelerator device visible to the host.
struct Device {
  std::string name;     ///< e.g. "xilinx:aws-vu9p-f1:4ddr-xpr-2pr"
  hw::BoardSpec board;
};

/// Enumerates the platform's devices (one per known board).
std::vector<Device> get_devices();

/// Finds a device by board id ("aws-f1", "zc706", ...).
Result<Device> get_device(std::string_view board_id);

class Context {
 public:
  explicit Context(Device device) : device_(std::move(device)) {}
  [[nodiscard]] const Device& device() const noexcept { return device_; }

 private:
  Device device_;
};

/// A device-side buffer (simulated device DDR).
class Buffer {
 public:
  Buffer(Context& context, std::size_t bytes)
      : storage_(bytes), context_(&context) {}

  [[nodiscard]] std::size_t size() const noexcept { return storage_.size(); }
  [[nodiscard]] std::span<std::byte> bytes() noexcept { return storage_; }
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept { return storage_; }

 private:
  std::vector<std::byte> storage_;
  Context* context_;
};

/// A programmed binary. Holds the parsed container and the device kernel
/// reconstructed from it (shared so Kernel objects stay cheap).
class Program {
 public:
  static Result<Program> create_with_binary(Context& context,
                                            std::span<const std::byte> binary);

  [[nodiscard]] const Xclbin& xclbin() const noexcept { return xclbin_; }
  [[nodiscard]] const std::shared_ptr<LoadedKernel>& device_kernel() const noexcept {
    return kernel_;
  }
  [[nodiscard]] const std::string& kernel_name() const noexcept {
    return kernel_name_;
  }

 private:
  Xclbin xclbin_;
  std::shared_ptr<LoadedKernel> kernel_;
  std::string kernel_name_;
};

/// Kernel argument indices follow the generated kernel.xml:
///   0 = input buffer, 1 = output buffer, 2 = weight buffer, 3 = batch.
class Kernel {
 public:
  Kernel(Program& program, std::string name);

  Status set_arg(std::uint32_t index, Buffer& buffer);
  Status set_arg(std::uint32_t index, std::int32_t scalar);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  friend class CommandQueue;
  std::shared_ptr<LoadedKernel> device_kernel_;
  std::string name_;
  Buffer* input_ = nullptr;
  Buffer* output_ = nullptr;
  Buffer* weights_ = nullptr;
  std::int32_t batch_ = 0;
};

/// Completion handle of one enqueued command (the cl_event analogue).
/// Copyable and cheap; a default-constructed Event is already complete.
/// Pass events to later enqueue_* calls to order dependent commands —
/// including across queues.
class Event {
 public:
  Event() = default;

  /// Blocks until the command has executed (success or failure).
  void wait() const;
  [[nodiscard]] bool is_complete() const;
  /// Waits, then returns the command's execution status. A command whose
  /// wait list contains a failed event fails without executing.
  [[nodiscard]] Status status() const;
  /// Waits, then returns the device-time statistics of a kernel task.
  /// Errors for transfer events and failed tasks.
  [[nodiscard]] Result<KernelStats> kernel_stats() const;

 private:
  friend class CommandQueue;
  struct Shared {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    Status status = Status::ok();
    std::optional<KernelStats> stats;
  };
  explicit Event(std::shared_ptr<Shared> shared) : shared_(std::move(shared)) {}
  std::shared_ptr<Shared> shared_;
};

struct QueueProperties {
  /// When true, commands are ordered only by their wait lists (the
  /// CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE analogue): several workers
  /// drain the queue so independent commands overlap. When false (the
  /// default) a single worker executes commands strictly in enqueue order.
  bool out_of_order = false;
};

/// An asynchronous command queue. enqueue_* calls validate their arguments
/// synchronously (bounds, kernel arg completeness) and return immediately;
/// execution happens on the queue's worker thread(s). Execution errors
/// surface on the command's Event and — first one wins — from finish().
///
/// Data lifetime: writes *stage* (copy) the source bytes at enqueue time,
/// so the caller's span may be freed as soon as enqueue_write_buffer
/// returns. Reads are zero-copy into the caller's span, which must stay
/// valid until the read's event completes.
class CommandQueue {
 public:
  explicit CommandQueue(Context& context, QueueProperties properties = {});
  ~CommandQueue();
  CommandQueue(const CommandQueue&) = delete;
  CommandQueue& operator=(const CommandQueue&) = delete;

  Result<Event> enqueue_write_buffer(Buffer& buffer, std::size_t offset,
                                     std::span<const std::byte> data,
                                     std::vector<Event> wait_events = {});
  Result<Event> enqueue_read_buffer(const Buffer& buffer, std::size_t offset,
                                    std::span<std::byte> out,
                                    std::vector<Event> wait_events = {});

  /// Executes the kernel: loads the weight buffer into the accelerator,
  /// streams the input buffer through the spatial pipeline and writes
  /// results to the output buffer. The kernel's arguments are snapshotted
  /// at enqueue time (later set_arg calls do not affect commands already in
  /// flight). Device-time statistics ride on the returned event
  /// (Event::kernel_stats).
  Result<Event> enqueue_task(Kernel& kernel,
                             std::vector<Event> wait_events = {});

  /// Blocks until every enqueued command has executed and returns the
  /// first execution error since the previous finish() (ok if none).
  Status finish();

 private:
  /// One queued command: the deferred body plus its dependencies and the
  /// completion state its Event observes.
  struct Command {
    std::function<Status(std::optional<KernelStats>& stats)> body;
    std::vector<Event> waits;
    std::shared_ptr<Event::Shared> completion;
  };

  Event submit(std::function<Status(std::optional<KernelStats>&)> body,
               std::vector<Event> waits);
  void worker_loop();

  Context* context_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable queue_idle_;
  std::deque<Command> pending_;
  std::size_t in_flight_ = 0;
  Status deferred_error_ = Status::ok();
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace condor::runtime::ocl

// LoadedKernel: the device-side view of a programmed accelerator.
//
// Reconstructs the accelerator plan from the xclbin's network.json section,
// binds runtime-supplied weights (the external weight file loaded into a
// device buffer), and executes batches through the functional dataflow
// engine while reporting *device time* from the cycle-approximate pipeline
// simulation at the achieved kernel clock. This is the piece that stands in
// for the physical FPGA in every deployment path (on-premise and F1).
//
// A kernel can be replicated: set_instances(N) stands in for programming N
// compute units (or N F1 slots with the same AFI) behind one kernel handle.
// Batches are sharded dynamically across the replicas by a
// dataflow::ExecutorPool — outputs stay bit-exact and in input order at any
// instance count — and the reported device time is the *maximum* of the
// per-replica pipeline simulations, i.e. the wall time of N concurrent
// devices, not their sum.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <span>

#include "common/status.hpp"
#include "dataflow/executor_pool.hpp"
#include "hls/synthesis.hpp"
#include "nn/weights.hpp"
#include "runtime/xclbin.hpp"
#include "tensor/tensor.hpp"

namespace condor::runtime {

/// Timing of one kernel invocation.
struct KernelStats {
  std::uint64_t simulated_cycles = 0;  ///< max over instances when sharded
  double clock_mhz = 0.0;
  double simulated_seconds = 0.0;
  double host_wall_seconds = 0.0;  ///< host-side functional simulation time
  std::size_t instances = 1;       ///< replicas the batch was sharded over

  [[nodiscard]] double images_per_second(std::size_t batch) const noexcept {
    return simulated_seconds > 0.0
               ? static_cast<double>(batch) / simulated_seconds
               : 0.0;
  }
};

class LoadedKernel {
 public:
  /// Parses the container and re-runs the (simulated) implementation to
  /// recover the achieved clock — loading a binary onto the device
  /// configures exactly the bitstream that was signed off at build time.
  static Result<LoadedKernel> from_xclbin(const Xclbin& xclbin);

  /// Binds the runtime weights (deserialized Condor weight file bytes) and
  /// builds the executor pool at the current instance count.
  Status load_weights(std::span<const std::byte> weight_file_bytes);

  /// Replicates the accelerator `instances` (>= 1) times. If weights are
  /// already loaded the pool is rebuilt over the same shared plan + weight
  /// store; otherwise the count applies to the next load_weights.
  Status set_instances(std::size_t instances);
  [[nodiscard]] std::size_t instances() const noexcept { return instances_; }

  [[nodiscard]] bool weights_loaded() const noexcept { return pool_ != nullptr; }

  /// Runs one batch (requires load_weights first); safe to call from
  /// multiple command-queue workers — invocations serialize on the kernel.
  /// When `stats_out` is non-null the invocation's stats are also written
  /// there under the same lock (last_stats() alone is not synchronized).
  Result<std::vector<Tensor>> run(std::span<const Tensor> inputs,
                                  KernelStats* stats_out = nullptr);

  [[nodiscard]] const KernelStats& last_stats() const noexcept { return stats_; }
  /// Sharding census of the most recent run (images per instance).
  [[nodiscard]] const dataflow::PoolRunStats* last_shard_stats() const noexcept {
    return pool_ != nullptr ? &pool_->last_pool_stats() : nullptr;
  }
  [[nodiscard]] const hw::AcceleratorPlan& plan() const noexcept { return *plan_; }
  [[nodiscard]] double clock_mhz() const noexcept { return clock_mhz_; }
  [[nodiscard]] const hls::SynthesisReport& synthesis_report() const noexcept {
    return synthesis_;
  }

 private:
  LoadedKernel() = default;

  std::shared_ptr<const hw::AcceleratorPlan> plan_;
  std::shared_ptr<const nn::WeightStore> weights_;
  hls::SynthesisReport synthesis_;
  double clock_mhz_ = 0.0;
  std::size_t instances_ = 1;
  std::unique_ptr<dataflow::ExecutorPool> pool_;
  /// Serializes run() across command-queue workers. Heap-held so the
  /// kernel stays movable (it travels by value out of from_xclbin).
  std::unique_ptr<std::mutex> run_mutex_ = std::make_unique<std::mutex>();
  KernelStats stats_;
};

}  // namespace condor::runtime

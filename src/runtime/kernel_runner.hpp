// LoadedKernel: the device-side view of a programmed accelerator.
//
// Reconstructs the accelerator plan from the xclbin's network.json section,
// binds runtime-supplied weights (the external weight file loaded into a
// device buffer), and executes batches through the functional dataflow
// engine while reporting *device time* from the cycle-approximate pipeline
// simulation at the achieved kernel clock. This is the piece that stands in
// for the physical FPGA in every deployment path (on-premise and F1).
#pragma once

#include <memory>
#include <optional>

#include "common/status.hpp"
#include "dataflow/executor.hpp"
#include "hls/synthesis.hpp"
#include "nn/weights.hpp"
#include "runtime/xclbin.hpp"
#include "tensor/tensor.hpp"

namespace condor::runtime {

/// Timing of one kernel invocation.
struct KernelStats {
  std::uint64_t simulated_cycles = 0;
  double clock_mhz = 0.0;
  double simulated_seconds = 0.0;
  double host_wall_seconds = 0.0;  ///< host-side functional simulation time

  [[nodiscard]] double images_per_second(std::size_t batch) const noexcept {
    return simulated_seconds > 0.0
               ? static_cast<double>(batch) / simulated_seconds
               : 0.0;
  }
};

class LoadedKernel {
 public:
  /// Parses the container and re-runs the (simulated) implementation to
  /// recover the achieved clock — loading a binary onto the device
  /// configures exactly the bitstream that was signed off at build time.
  static Result<LoadedKernel> from_xclbin(const Xclbin& xclbin);

  /// Binds the runtime weights (deserialized Condor weight file bytes).
  Status load_weights(std::span<const std::byte> weight_file_bytes);

  [[nodiscard]] bool weights_loaded() const noexcept { return executor_ != nullptr; }

  /// Runs one batch; requires load_weights first.
  Result<std::vector<Tensor>> run(const std::vector<Tensor>& inputs);

  [[nodiscard]] const KernelStats& last_stats() const noexcept { return stats_; }
  [[nodiscard]] const hw::AcceleratorPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] double clock_mhz() const noexcept { return clock_mhz_; }
  [[nodiscard]] const hls::SynthesisReport& synthesis_report() const noexcept {
    return synthesis_;
  }

 private:
  LoadedKernel() = default;

  hw::AcceleratorPlan plan_;
  hls::SynthesisReport synthesis_;
  double clock_mhz_ = 0.0;
  std::unique_ptr<dataflow::AcceleratorExecutor> executor_;
  KernelStats stats_;
};

}  // namespace condor::runtime

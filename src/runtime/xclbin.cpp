#include "runtime/xclbin.hpp"

#include "common/byte_io.hpp"
#include "common/strings.hpp"

namespace condor::runtime {
namespace {

// "XCLB" + format version.
constexpr std::uint32_t kMagic = 0x424C4358;
constexpr std::uint32_t kVersion = 1;

}  // namespace

void Xclbin::set_section(std::string name, std::vector<std::byte> data) {
  for (XclbinSection& section : sections_) {
    if (section.name == name) {
      section.data = std::move(data);
      return;
    }
  }
  sections_.push_back({std::move(name), std::move(data)});
}

void Xclbin::set_text_section(std::string name, std::string_view text) {
  std::vector<std::byte> data(text.size());
  std::memcpy(data.data(), text.data(), text.size());
  set_section(std::move(name), std::move(data));
}

const XclbinSection* Xclbin::find(std::string_view name) const noexcept {
  for (const XclbinSection& section : sections_) {
    if (section.name == name) {
      return &section;
    }
  }
  return nullptr;
}

Result<std::string> Xclbin::text_section(std::string_view name) const {
  const XclbinSection* section = find(name);
  if (section == nullptr) {
    return not_found("xclbin has no section '" + std::string(name) + "'");
  }
  return std::string(reinterpret_cast<const char*>(section->data.data()),
                     section->data.size());
}

std::vector<std::byte> Xclbin::serialize() const {
  ByteWriter out;
  out.u32le(kMagic);
  out.u32le(kVersion);
  out.u32le(static_cast<std::uint32_t>(sections_.size()));
  for (const XclbinSection& section : sections_) {
    out.u32le(static_cast<std::uint32_t>(section.name.size()));
    out.string_bytes(section.name);
    out.u64le(section.data.size());
    out.u32le(crc32(section.data));
    out.bytes(section.data);
  }
  return std::move(out).take();
}

Result<Xclbin> Xclbin::deserialize(std::span<const std::byte> data) {
  ByteReader in(data);
  CONDOR_ASSIGN_OR_RETURN(std::uint32_t magic, in.u32le());
  if (magic != kMagic) {
    return invalid_input("not a Condor xclbin (bad magic)");
  }
  CONDOR_ASSIGN_OR_RETURN(std::uint32_t version, in.u32le());
  if (version != kVersion) {
    return unsupported(strings::format("xclbin format version %u", version));
  }
  CONDOR_ASSIGN_OR_RETURN(std::uint32_t count, in.u32le());
  Xclbin bin;
  for (std::uint32_t i = 0; i < count; ++i) {
    CONDOR_ASSIGN_OR_RETURN(std::uint32_t name_size, in.u32le());
    CONDOR_ASSIGN_OR_RETURN(std::string name, in.string_bytes(name_size));
    CONDOR_ASSIGN_OR_RETURN(std::uint64_t data_size, in.u64le());
    CONDOR_ASSIGN_OR_RETURN(std::uint32_t expected_crc, in.u32le());
    CONDOR_ASSIGN_OR_RETURN(auto payload,
                            in.bytes(static_cast<std::size_t>(data_size)));
    if (crc32(payload) != expected_crc) {
      return invalid_input("xclbin section '" + name + "' failed CRC check");
    }
    bin.sections_.push_back({std::move(name),
                             std::vector<std::byte>(payload.begin(), payload.end())});
  }
  if (!in.at_end()) {
    return invalid_input("xclbin has trailing bytes");
  }
  return bin;
}

Status Xclbin::save(const std::string& path) const {
  const std::vector<std::byte> data = serialize();
  return write_file(path, data);
}

Result<Xclbin> Xclbin::load(const std::string& path) {
  CONDOR_ASSIGN_OR_RETURN(auto data, read_file(path));
  return deserialize(data);
}

std::string generate_kernel_xml(const std::string& kernel_name,
                                const std::string& vendor) {
  std::string out;
  out += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  out += strings::format(
      "<root versionMajor=\"1\" versionMinor=\"0\">\n"
      "  <kernel name=\"%s\" language=\"ip\" vlnv=\"%s:kernel:%s:1.0\"\n"
      "          attributes=\"\" preferredWorkGroupSizeMultiple=\"0\"\n"
      "          workGroupSize=\"1\" interrupt=\"true\">\n",
      kernel_name.c_str(), vendor.c_str(), kernel_name.c_str());
  out +=
      "    <ports>\n"
      "      <port name=\"M_AXI_GMEM0\" mode=\"master\" range=\"0xFFFFFFFF\" "
      "dataWidth=\"512\" portType=\"addressable\" base=\"0x0\"/>\n"
      "      <port name=\"M_AXI_GMEM1\" mode=\"master\" range=\"0xFFFFFFFF\" "
      "dataWidth=\"512\" portType=\"addressable\" base=\"0x0\"/>\n"
      "      <port name=\"M_AXI_GMEM2\" mode=\"master\" range=\"0xFFFFFFFF\" "
      "dataWidth=\"512\" portType=\"addressable\" base=\"0x0\"/>\n"
      "      <port name=\"S_AXI_CONTROL\" mode=\"slave\" range=\"0x1000\" "
      "dataWidth=\"32\" portType=\"addressable\" base=\"0x0\"/>\n"
      "    </ports>\n"
      "    <args>\n"
      "      <arg name=\"gmem_in\" addressQualifier=\"1\" id=\"0\" port=\"M_AXI_GMEM0\" "
      "size=\"0x8\" offset=\"0x10\" hostOffset=\"0x0\" hostSize=\"0x8\" type=\"float*\"/>\n"
      "      <arg name=\"gmem_out\" addressQualifier=\"1\" id=\"1\" port=\"M_AXI_GMEM1\" "
      "size=\"0x8\" offset=\"0x1C\" hostOffset=\"0x0\" hostSize=\"0x8\" type=\"float*\"/>\n"
      "      <arg name=\"gmem_weights\" addressQualifier=\"1\" id=\"2\" port=\"M_AXI_GMEM2\" "
      "size=\"0x8\" offset=\"0x28\" hostOffset=\"0x0\" hostSize=\"0x8\" type=\"float*\"/>\n"
      "      <arg name=\"batch\" addressQualifier=\"0\" id=\"3\" port=\"S_AXI_CONTROL\" "
      "size=\"0x4\" offset=\"0x34\" hostOffset=\"0x0\" hostSize=\"0x4\" type=\"int\"/>\n"
      "    </args>\n"
      "  </kernel>\n"
      "</root>\n";
  return out;
}

}  // namespace condor::runtime

#include "runtime/kernel_runner.hpp"

#include <algorithm>
#include <chrono>

#include "hw/hw_ir.hpp"
#include "sim/accel_sim.hpp"

namespace condor::runtime {

Result<LoadedKernel> LoadedKernel::from_xclbin(const Xclbin& xclbin) {
  LoadedKernel kernel;
  CONDOR_ASSIGN_OR_RETURN(std::string network_json,
                          xclbin.text_section("network.json"));
  CONDOR_ASSIGN_OR_RETURN(hw::HwNetwork network,
                          hw::from_json_text(network_json));
  CONDOR_ASSIGN_OR_RETURN(hw::AcceleratorPlan plan,
                          hw::plan_accelerator(network));
  CONDOR_ASSIGN_OR_RETURN(kernel.synthesis_, hls::synthesize(plan));
  kernel.clock_mhz_ = kernel.synthesis_.achieved_clock_mhz;
  kernel.plan_ = std::make_shared<const hw::AcceleratorPlan>(std::move(plan));
  return kernel;
}

Status LoadedKernel::load_weights(std::span<const std::byte> weight_file_bytes) {
  CONDOR_ASSIGN_OR_RETURN(nn::WeightStore weights,
                          nn::WeightStore::deserialize(weight_file_bytes));
  std::lock_guard<std::mutex> lock(*run_mutex_);
  auto shared_weights = std::make_shared<const nn::WeightStore>(std::move(weights));
  CONDOR_ASSIGN_OR_RETURN(
      dataflow::ExecutorPool pool,
      dataflow::ExecutorPool::create(plan_, shared_weights, instances_));
  weights_ = std::move(shared_weights);
  pool_ = std::make_unique<dataflow::ExecutorPool>(std::move(pool));
  return Status::ok();
}

Status LoadedKernel::set_instances(std::size_t instances) {
  if (instances == 0) {
    return invalid_input("kernel needs at least one instance");
  }
  std::lock_guard<std::mutex> lock(*run_mutex_);
  if (instances == instances_) {
    return Status::ok();
  }
  if (weights_ != nullptr) {
    // Rebuild the pool over the same shared plan + weight store; nothing is
    // re-parsed or copied, only the replica set changes.
    CONDOR_ASSIGN_OR_RETURN(
        dataflow::ExecutorPool pool,
        dataflow::ExecutorPool::create(plan_, weights_, instances));
    pool_ = std::make_unique<dataflow::ExecutorPool>(std::move(pool));
  }
  instances_ = instances;
  return Status::ok();
}

Result<std::vector<Tensor>> LoadedKernel::run(std::span<const Tensor> inputs,
                                              KernelStats* stats_out) {
  std::lock_guard<std::mutex> lock(*run_mutex_);
  if (pool_ == nullptr) {
    return invalid_input("kernel weights not loaded (call load_weights first)");
  }
  const auto wall_start = std::chrono::steady_clock::now();
  CONDOR_ASSIGN_OR_RETURN(std::vector<Tensor> outputs,
                          pool_->run_batch(inputs));
  const auto wall_end = std::chrono::steady_clock::now();

  // Device time from the cycle-approximate pipeline simulation. With N
  // instances the replicas run concurrently, so the batch's device time is
  // the slowest replica's time over the images it actually executed (the
  // dynamic sharding census), not the sum.
  CONDOR_ASSIGN_OR_RETURN(
      hw::PerformanceEstimate perf,
      hw::estimate_performance(*plan_, synthesis_.resources, clock_mhz_));
  const sim::AcceleratorSim accel_sim = sim::build_accelerator_sim(perf);
  std::uint64_t max_cycles = 0;
  bool simulated = false;
  for (const std::size_t images : pool_->last_pool_stats().images_per_instance) {
    if (images == 0) {
      continue;
    }
    CONDOR_ASSIGN_OR_RETURN(sim::BatchPoint point,
                            sim::simulate_batch(accel_sim, images));
    max_cycles = std::max<std::uint64_t>(max_cycles, point.total_cycles);
    simulated = true;
  }
  if (!simulated) {
    CONDOR_ASSIGN_OR_RETURN(sim::BatchPoint point,
                            sim::simulate_batch(accel_sim, inputs.size()));
    max_cycles = point.total_cycles;
  }

  stats_.simulated_cycles = max_cycles;
  stats_.clock_mhz = clock_mhz_;
  stats_.simulated_seconds =
      static_cast<double>(max_cycles) / (clock_mhz_ * 1e6);
  stats_.host_wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  stats_.instances = pool_->instances();
  if (stats_out != nullptr) {
    *stats_out = stats_;
  }
  return outputs;
}

}  // namespace condor::runtime

#include "runtime/kernel_runner.hpp"

#include <chrono>

#include "hw/hw_ir.hpp"
#include "sim/accel_sim.hpp"

namespace condor::runtime {

Result<LoadedKernel> LoadedKernel::from_xclbin(const Xclbin& xclbin) {
  LoadedKernel kernel;
  CONDOR_ASSIGN_OR_RETURN(std::string network_json,
                          xclbin.text_section("network.json"));
  CONDOR_ASSIGN_OR_RETURN(hw::HwNetwork network,
                          hw::from_json_text(network_json));
  CONDOR_ASSIGN_OR_RETURN(kernel.plan_, hw::plan_accelerator(network));
  CONDOR_ASSIGN_OR_RETURN(kernel.synthesis_, hls::synthesize(kernel.plan_));
  kernel.clock_mhz_ = kernel.synthesis_.achieved_clock_mhz;
  return kernel;
}

Status LoadedKernel::load_weights(std::span<const std::byte> weight_file_bytes) {
  CONDOR_ASSIGN_OR_RETURN(nn::WeightStore weights,
                          nn::WeightStore::deserialize(weight_file_bytes));
  CONDOR_ASSIGN_OR_RETURN(
      dataflow::AcceleratorExecutor executor,
      dataflow::AcceleratorExecutor::create(plan_, std::move(weights)));
  executor_ = std::make_unique<dataflow::AcceleratorExecutor>(std::move(executor));
  return Status::ok();
}

Result<std::vector<Tensor>> LoadedKernel::run(const std::vector<Tensor>& inputs) {
  if (executor_ == nullptr) {
    return invalid_input("kernel weights not loaded (call load_weights first)");
  }
  const auto wall_start = std::chrono::steady_clock::now();
  CONDOR_ASSIGN_OR_RETURN(std::vector<Tensor> outputs,
                          executor_->run_batch(inputs));
  const auto wall_end = std::chrono::steady_clock::now();

  // Device time from the cycle-approximate pipeline simulation.
  CONDOR_ASSIGN_OR_RETURN(
      hw::PerformanceEstimate perf,
      hw::estimate_performance(plan_, synthesis_.resources, clock_mhz_));
  const sim::AcceleratorSim accel_sim = sim::build_accelerator_sim(perf);
  CONDOR_ASSIGN_OR_RETURN(sim::BatchPoint point,
                          sim::simulate_batch(accel_sim, inputs.size()));

  stats_.simulated_cycles = point.total_cycles;
  stats_.clock_mhz = clock_mhz_;
  stats_.simulated_seconds =
      static_cast<double>(point.total_cycles) / (clock_mhz_ * 1e6);
  stats_.host_wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  return outputs;
}

}  // namespace condor::runtime

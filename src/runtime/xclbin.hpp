// The Condor FPGA binary container ("xclbin").
//
// In the real flow, XOCC packages the kernel into a Xilinx OpenCL Compute
// Unit Binary (xclbin) — a sectioned container the OpenCL runtime loads
// onto the device. This reproduction uses the same structure: a magic +
// version header followed by named sections, each CRC-protected. Sections
// carried by Condor-built binaries:
//
//   network.json   — the Condor network representation (topology + hw)
//   kernel.xml     — the SDAccel kernel description (flow step 6a)
//   synth.rpt      — the (simulated) HLS/implementation report
//   src/<file>     — every generated HLS source, for inspection
//   meta.json      — name, board, clock, creation info
//
// Weights deliberately do NOT live in the container: they are external
// files loaded into a device buffer at runtime (paper §3.1.1 — "this
// enables the update of the network without the need for re-synthesizing
// the accelerator").
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace condor::runtime {

struct XclbinSection {
  std::string name;
  std::vector<std::byte> data;
};

class Xclbin {
 public:
  /// Adds or replaces a section.
  void set_section(std::string name, std::vector<std::byte> data);
  void set_text_section(std::string name, std::string_view text);

  [[nodiscard]] const XclbinSection* find(std::string_view name) const noexcept;
  [[nodiscard]] Result<std::string> text_section(std::string_view name) const;
  [[nodiscard]] const std::vector<XclbinSection>& sections() const noexcept {
    return sections_;
  }

  /// Serializes to the container byte format.
  [[nodiscard]] std::vector<std::byte> serialize() const;
  static Result<Xclbin> deserialize(std::span<const std::byte> data);

  Status save(const std::string& path) const;
  static Result<Xclbin> load(const std::string& path);

 private:
  std::vector<XclbinSection> sections_;
};

/// Generates the SDAccel kernel description XML (flow step 6a): kernel
/// name/vendor plus the AXI4 master + AXI4-Lite slave interface the host
/// uses to talk to the accelerator.
std::string generate_kernel_xml(const std::string& kernel_name,
                                const std::string& vendor = "condor");

}  // namespace condor::runtime

#include "json/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/strings.hpp"

namespace condor::json {

const Value* Object::find(std::string_view key) const noexcept {
  for (const Entry& entry : entries_) {
    if (entry.first == key) {
      return &entry.second;
    }
  }
  return nullptr;
}

Value* Object::find(std::string_view key) noexcept {
  for (Entry& entry : entries_) {
    if (entry.first == key) {
      return &entry.second;
    }
  }
  return nullptr;
}

Value& Object::set(std::string key, Value value) {
  if (Value* existing = find(key)) {
    *existing = std::move(value);
    return *existing;
  }
  entries_.emplace_back(std::move(key), std::move(value));
  return entries_.back().second;
}

bool Object::operator==(const Object& other) const {
  if (entries_.size() != other.entries_.size()) {
    return false;
  }
  // Key order is not semantically significant for equality.
  for (const Entry& entry : entries_) {
    const Value* match = other.find(entry.first);
    if (match == nullptr || !(*match == entry.second)) {
      return false;
    }
  }
  return true;
}

Type Value::type() const noexcept {
  switch (data_.index()) {
    case 0:
      return Type::kNull;
    case 1:
      return Type::kBool;
    case 2:
      return Type::kInt;
    case 3:
      return Type::kDouble;
    case 4:
      return Type::kString;
    case 5:
      return Type::kArray;
    default:
      return Type::kObject;
  }
}

Result<bool> Value::as_bool() const {
  if (const bool* b = std::get_if<bool>(&data_)) {
    return *b;
  }
  return invalid_input("json: expected bool");
}

Result<std::int64_t> Value::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&data_)) {
    return *i;
  }
  if (const auto* d = std::get_if<double>(&data_)) {
    if (std::floor(*d) == *d) {
      return static_cast<std::int64_t>(*d);
    }
  }
  return invalid_input("json: expected integer");
}

Result<double> Value::as_double() const {
  if (const auto* d = std::get_if<double>(&data_)) {
    return *d;
  }
  if (const auto* i = std::get_if<std::int64_t>(&data_)) {
    return static_cast<double>(*i);
  }
  return invalid_input("json: expected number");
}

Result<std::string> Value::as_string() const {
  if (const auto* s = std::get_if<std::string>(&data_)) {
    return *s;
  }
  return invalid_input("json: expected string");
}

bool Value::operator==(const Value& other) const {
  // Numeric cross-type comparison: 2 == 2.0.
  if (is_number() && other.is_number() && type() != other.type()) {
    return as_double().value() == other.as_double().value();
  }
  return data_ == other.data_;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  /// Nesting bound: recursive descent must not exhaust the stack on
  /// adversarial inputs like "[[[[...".
  static constexpr int kMaxDepth = 192;

  Result<Value> run() {
    CONDOR_ASSIGN_OR_RETURN(Value value, parse_value());
    skip_whitespace();
    if (pos_ != text_.size()) {
      return error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status error(const std::string& what) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    return invalid_input(strings::format("json parse error at %zu:%zu: %s", line,
                                         column, what.c_str()));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  bool consume(char expected) {
    if (!eof() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_keyword(std::string_view keyword) {
    if (text_.substr(pos_, keyword.size()) == keyword) {
      pos_ += keyword.size();
      return true;
    }
    return false;
  }

  Result<Value> parse_value() {
    if (++depth_ > kMaxDepth) {
      --depth_;
      return error("nesting deeper than the parser limit");
    }
    struct DepthGuard {
      int& depth;
      ~DepthGuard() { --depth; }
    } guard{depth_};
    skip_whitespace();
    if (eof()) {
      return error("unexpected end of input");
    }
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        CONDOR_ASSIGN_OR_RETURN(std::string s, parse_string());
        return Value(std::move(s));
      }
      case 't':
        if (consume_keyword("true")) {
          return Value(true);
        }
        return error("invalid literal");
      case 'f':
        if (consume_keyword("false")) {
          return Value(false);
        }
        return error("invalid literal");
      case 'n':
        if (consume_keyword("null")) {
          return Value(nullptr);
        }
        return error("invalid literal");
      default:
        return parse_number();
    }
  }

  Result<Value> parse_object() {
    ++pos_;  // '{'
    Object object;
    skip_whitespace();
    if (consume('}')) {
      return Value(std::move(object));
    }
    for (;;) {
      skip_whitespace();
      if (eof() || peek() != '"') {
        return error("expected object key string");
      }
      CONDOR_ASSIGN_OR_RETURN(std::string key, parse_string());
      skip_whitespace();
      if (!consume(':')) {
        return error("expected ':' after object key");
      }
      CONDOR_ASSIGN_OR_RETURN(Value value, parse_value());
      if (object.contains(key)) {
        return error("duplicate object key '" + key + "'");
      }
      object.set(std::move(key), std::move(value));
      skip_whitespace();
      if (consume('}')) {
        return Value(std::move(object));
      }
      if (!consume(',')) {
        return error("expected ',' or '}' in object");
      }
    }
  }

  Result<Value> parse_array() {
    ++pos_;  // '['
    Array array;
    skip_whitespace();
    if (consume(']')) {
      return Value(std::move(array));
    }
    for (;;) {
      CONDOR_ASSIGN_OR_RETURN(Value value, parse_value());
      array.push_back(std::move(value));
      skip_whitespace();
      if (consume(']')) {
        return Value(std::move(array));
      }
      if (!consume(',')) {
        return error("expected ',' or ']' in array");
      }
    }
  }

  Result<std::string> parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) {
        return error("unterminated escape sequence");
      }
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          CONDOR_ASSIGN_OR_RETURN(unsigned code, parse_hex4());
          append_utf8(out, code);
          break;
        }
        default:
          return error("invalid escape sequence");
      }
    }
    return error("unterminated string");
  }

  Result<unsigned> parse_hex4() {
    if (pos_ + 4 > text_.size()) {
      return error("truncated \\u escape");
    }
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return error("invalid hex digit in \\u escape");
      }
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Result<Value> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
      // sign consumed
    }
    bool any_digit = false;
    while (!eof() && peek() >= '0' && peek() <= '9') {
      ++pos_;
      any_digit = true;
    }
    if (!any_digit) {
      return error("invalid number");
    }
    bool is_double = false;
    if (!eof() && peek() == '.') {
      is_double = true;
      ++pos_;
      bool frac_digit = false;
      while (!eof() && peek() >= '0' && peek() <= '9') {
        ++pos_;
        frac_digit = true;
      }
      if (!frac_digit) {
        return error("digits required after decimal point");
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      is_double = true;
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) {
        ++pos_;
      }
      bool exp_digit = false;
      while (!eof() && peek() >= '0' && peek() <= '9') {
        ++pos_;
        exp_digit = true;
      }
      if (!exp_digit) {
        return error("digits required in exponent");
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      const long long value = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Value(static_cast<std::int64_t>(value));
      }
      // fall through to double on int64 overflow
    }
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return error("invalid number '" + token + "'");
    }
    return Value(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strings::format("\\u%04x", static_cast<unsigned char>(c));
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_number(double value, std::string& out) {
  // Shortest round-trippable representation up to 17 significant digits.
  for (int precision = 6; precision <= 17; ++precision) {
    const std::string candidate = strings::format("%.*g", precision, value);
    if (std::strtod(candidate.c_str(), nullptr) == value) {
      out += candidate;
      return;
    }
  }
  out += strings::format("%.17g", value);
}

void dump_value(const Value& value, bool pretty, int depth, std::string& out) {
  const auto indent = [&](int level) {
    if (pretty) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(level) * 2, ' ');
    }
  };
  switch (value.type()) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += value.as_bool().value() ? "true" : "false";
      break;
    case Type::kInt:
      out += strings::format("%lld", static_cast<long long>(value.as_int().value()));
      break;
    case Type::kDouble:
      dump_number(value.as_double().value(), out);
      break;
    case Type::kString:
      dump_string(value.string(), out);
      break;
    case Type::kArray: {
      const Array& array = value.array();
      if (array.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < array.size(); ++i) {
        if (i != 0) {
          out.push_back(',');
        }
        indent(depth + 1);
        dump_value(array[i], pretty, depth + 1, out);
      }
      indent(depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      const Object& object = value.object();
      if (object.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, entry] : object) {
        if (!first) {
          out.push_back(',');
        }
        first = false;
        indent(depth + 1);
        dump_string(key, out);
        out += pretty ? ": " : ":";
        dump_value(entry, pretty, depth + 1, out);
      }
      indent(depth);
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

Result<Value> parse(std::string_view text) { return Parser(text).run(); }

std::string dump(const Value& value, bool pretty) {
  std::string out;
  dump_value(value, pretty, 0, out);
  if (pretty) {
    out.push_back('\n');
  }
  return out;
}

}  // namespace condor::json

// Self-contained JSON implementation for the Condor network representation.
//
// The original framework describes network topologies in "an internal JSON
// [that] resembles the caffe prototxt file but contains more information
// about the underlying hardware" (paper §3.1.1). This module provides the
// value model, a recursive-descent parser with precise error positions, and
// a deterministic serializer (object keys keep insertion order so emitted
// files are stable across runs — important for artifact checksums).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.hpp"

namespace condor::json {

class Value;

/// Order-preserving string→Value map. JSON objects in Condor files are small
/// (tens of keys), so a vector of pairs beats a tree/hash both in locality
/// and in preserving authoring order.
class Object {
 public:
  using Entry = std::pair<std::string, Value>;

  /// Returns the value for `key`, or nullptr.
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;
  [[nodiscard]] Value* find(std::string_view key) noexcept;

  /// Inserts or overwrites.
  Value& set(std::string key, Value value);

  [[nodiscard]] bool contains(std::string_view key) const noexcept {
    return find(key) != nullptr;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  [[nodiscard]] auto begin() const noexcept { return entries_.begin(); }
  [[nodiscard]] auto end() const noexcept { return entries_.end(); }
  [[nodiscard]] auto begin() noexcept { return entries_.begin(); }
  [[nodiscard]] auto end() noexcept { return entries_.end(); }

  bool operator==(const Object& other) const;

 private:
  std::vector<Entry> entries_;
};

using Array = std::vector<Value>;

enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

/// A JSON value. Integers that fit int64 are kept exact (layer sizes,
/// parallelism degrees); everything else numeric is double.
class Value {
 public:
  Value() noexcept : data_(nullptr) {}
  Value(std::nullptr_t) noexcept : data_(nullptr) {}          // NOLINT
  Value(bool b) noexcept : data_(b) {}                        // NOLINT
  Value(int v) noexcept : data_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Value(std::int64_t v) noexcept : data_(v) {}                // NOLINT
  Value(std::size_t v) noexcept : data_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Value(double v) noexcept : data_(v) {}                      // NOLINT
  Value(const char* s) : data_(std::string(s)) {}             // NOLINT
  Value(std::string s) : data_(std::move(s)) {}               // NOLINT
  Value(Array a) : data_(std::move(a)) {}                     // NOLINT
  Value(Object o) : data_(std::move(o)) {}                    // NOLINT

  [[nodiscard]] Type type() const noexcept;

  [[nodiscard]] bool is_null() const noexcept { return type() == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type() == Type::kBool; }
  [[nodiscard]] bool is_int() const noexcept { return type() == Type::kInt; }
  [[nodiscard]] bool is_double() const noexcept { return type() == Type::kDouble; }
  [[nodiscard]] bool is_number() const noexcept { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const noexcept { return type() == Type::kString; }
  [[nodiscard]] bool is_array() const noexcept { return type() == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return type() == Type::kObject; }

  // Checked accessors: return an error Status when the type does not match.
  [[nodiscard]] Result<bool> as_bool() const;
  [[nodiscard]] Result<std::int64_t> as_int() const;
  [[nodiscard]] Result<double> as_double() const;  ///< accepts int too
  [[nodiscard]] Result<std::string> as_string() const;

  // Unchecked accessors (assert on mismatch); use after an is_*() check.
  [[nodiscard]] const Array& array() const { return std::get<Array>(data_); }
  [[nodiscard]] Array& array() { return std::get<Array>(data_); }
  [[nodiscard]] const Object& object() const { return std::get<Object>(data_); }
  [[nodiscard]] Object& object() { return std::get<Object>(data_); }
  [[nodiscard]] const std::string& string() const { return std::get<std::string>(data_); }

  bool operator==(const Value& other) const;

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array, Object> data_;
};

/// Parses a complete JSON document; trailing non-whitespace is an error.
/// Error messages include 1-based line:column of the offending character.
Result<Value> parse(std::string_view text);

/// Serializes with 2-space indentation (`pretty=true`) or compact.
std::string dump(const Value& value, bool pretty = true);

}  // namespace condor::json

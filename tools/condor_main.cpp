// The `condor` command-line tool (see src/cli/cli.hpp for the commands).
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "common/logging.hpp"

int main(int argc, char** argv) {
  condor::log::set_level(condor::log::Level::kInfo);
  std::vector<std::string> args(argv + 1, argv + argc);
  return condor::cli::run_cli(args, std::cout, std::cerr);
}
